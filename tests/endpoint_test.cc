#include <gtest/gtest.h>

#include <memory>

#include "src/sim/network.h"

namespace astraea {
namespace {

// Fixed-window controller for exercising the sender machinery in isolation.
class FixedWindow : public CongestionController {
 public:
  explicit FixedWindow(uint64_t cwnd_bytes, std::optional<double> pacing = std::nullopt)
      : cwnd_(cwnd_bytes), pacing_(pacing) {}

  void OnAck(const AckEvent& ev) override {
    ++acks;
    last_ack = ev;
  }
  void OnLoss(const LossEvent& ev) override {
    ++losses;
    last_loss = ev;
  }
  void OnMtpTick(const MtpReport& report) override {
    ++ticks;
    last_report = report;
  }
  uint64_t cwnd_bytes() const override { return cwnd_; }
  std::optional<double> pacing_bps() const override { return pacing_; }
  std::string name() const override { return "fixed"; }

  uint64_t cwnd_;
  std::optional<double> pacing_;
  int acks = 0;
  int losses = 0;
  int ticks = 0;
  AckEvent last_ack;
  LossEvent last_loss;
  MtpReport last_report;
};

struct TestNet {
  explicit TestNet(LinkConfig link_config, uint64_t cwnd_bytes,
                   std::optional<double> pacing = std::nullopt) {
    net = std::make_unique<Network>(1);
    net->AddLink(link_config);
    FlowSpec spec;
    spec.scheme = "fixed";
    spec.make_cc = [this, cwnd_bytes, pacing] {
      auto cc = std::make_unique<FixedWindow>(cwnd_bytes, pacing);
      controller = cc.get();
      return cc;
    };
    net->AddFlow(spec);
  }

  std::unique_ptr<Network> net;
  FixedWindow* controller = nullptr;
};

LinkConfig DefaultLink() {
  LinkConfig config;
  config.rate = Mbps(100);
  config.propagation_delay = Milliseconds(15);  // 30ms base RTT
  config.buffer_bytes = 375'000;                // 1 BDP
  return config;
}

TEST(SenderTest, RttMeasurementMatchesBaseRtt) {
  TestNet t(DefaultLink(), 4 * 1500);  // tiny window: no queueing
  t.net->Run(Seconds(5.0));
  // min RTT = 2*15ms propagation + serialization (~0.12ms).
  const TimeNs min_rtt = t.net->sender(0).min_rtt();
  EXPECT_GE(min_rtt, Milliseconds(30));
  EXPECT_LE(min_rtt, Milliseconds(31));
}

TEST(SenderTest, ThroughputIsCwndOverRtt) {
  // 20 packets over ~30ms RTT: 20*1500*8/0.030 = 8 Mbps (well below capacity).
  TestNet t(DefaultLink(), 20 * 1500);
  t.net->Run(Seconds(5.0));
  const double thr =
      t.net->flow_stats(0).throughput_mbps.MeanOver(Seconds(1.0), Seconds(5.0));
  EXPECT_NEAR(thr, 8.0, 0.5);
}

TEST(SenderTest, SaturatesLinkWithLargeWindow) {
  // Window of 2 BDP: link-limited, standing queue of ~1 BDP.
  TestNet t(DefaultLink(), 2 * 375'000);
  t.net->Run(Seconds(5.0));
  const double thr =
      t.net->flow_stats(0).throughput_mbps.MeanOver(Seconds(1.0), Seconds(5.0));
  EXPECT_NEAR(thr, 100.0, 2.0);
  // RTT should be about doubled by the standing queue.
  const double rtt = t.net->flow_stats(0).rtt_ms.MeanOver(Seconds(1.0), Seconds(5.0));
  EXPECT_NEAR(rtt, 60.0, 5.0);
}

TEST(SenderTest, ConservationBytesSentEqualsAckedPlusLostPlusInflight) {
  LinkConfig link = DefaultLink();
  link.buffer_bytes = 30'000;  // shallow: force drops
  TestNet t(link, 3 * 375'000);
  t.net->Run(Seconds(5.0));
  const FlowStats& stats = t.net->flow_stats(0);
  EXPECT_EQ(stats.bytes_sent,
            stats.bytes_acked + stats.bytes_lost + t.net->sender(0).inflight_bytes());
}

TEST(SenderTest, GapLossDetectionFiresOnDrops) {
  LinkConfig link = DefaultLink();
  link.buffer_bytes = 30'000;  // shallow buffer: overdriving drops packets
  TestNet t(link, 3 * 375'000);
  t.net->Run(Seconds(5.0));
  EXPECT_GT(t.controller->losses, 0);
  EXPECT_FALSE(t.controller->last_loss.is_timeout);
  EXPECT_GT(t.net->flow_stats(0).bytes_lost, 0u);
}

TEST(SenderTest, WireLossIsDetectedWithoutQueueing) {
  LinkConfig link = DefaultLink();
  link.random_loss = 0.05;
  TestNet t(link, 20 * 1500);  // no congestion at all
  t.net->Run(Seconds(10.0));
  const FlowStats& stats = t.net->flow_stats(0);
  EXPECT_GT(stats.bytes_lost, 0u);
  const double loss_ratio =
      static_cast<double>(stats.bytes_lost) / (stats.bytes_acked + stats.bytes_lost);
  EXPECT_NEAR(loss_ratio, 0.05, 0.02);
}

TEST(SenderTest, RtoFiresWhenEverythingIsLost) {
  LinkConfig link = DefaultLink();
  link.random_loss = 1.0;  // black hole
  TestNet t(link, 10 * 1500);
  t.net->Run(Seconds(3.0));
  EXPECT_GT(t.controller->losses, 0);
  EXPECT_TRUE(t.controller->last_loss.is_timeout);
  // Everything written off was counted as lost.
  EXPECT_GT(t.net->flow_stats(0).bytes_lost, 0u);
}

// Regression for the zero-ACK report skew: a silent MTP used to pair
// thr_bps == 0 with avg_rtt == srtt — a (stalled-throughput, healthy-latency)
// feature row no real network produces. A stalled interval must be marked and
// its avg_rtt must grow with the silence.
TEST(FlowMeterTest, ZeroAckIntervalIsStalledWithLowerBoundRtt) {
  FlowMeter meter(Seconds(60.0));
  FixedWindow cc(10 * 1500);

  // One healthy interval first: srtt converges to 20ms.
  meter.OnPacketAcked(Milliseconds(10), Milliseconds(20), 1500);
  const MtpReport healthy = meter.BuildReport(Milliseconds(30), Milliseconds(30),
                                              Milliseconds(10), 0, 0, cc);
  EXPECT_FALSE(healthy.stalled);
  EXPECT_EQ(healthy.avg_rtt, Milliseconds(20));
  EXPECT_GT(healthy.thr_bps, 0.0);
  meter.ResetInterval();

  // A silent interval: last ACK at t=10ms, report at t=1s. The silence bounds
  // every outstanding packet's RTT from below.
  meter.OnPacketSent(1500);
  const MtpReport stalled = meter.BuildReport(Seconds(1.0), Milliseconds(30),
                                              Milliseconds(10), 1500, 1, cc);
  EXPECT_TRUE(stalled.stalled);
  EXPECT_EQ(stalled.thr_bps, 0.0);
  EXPECT_EQ(stalled.avg_rtt, Seconds(1.0) - Milliseconds(10));
  EXPECT_GE(stalled.avg_rtt, stalled.srtt);
  meter.ResetInterval();

  // Deeper into the stall the bound keeps growing — the policy sees latency
  // inflating alongside the zeroed throughput, not a frozen healthy RTT.
  const MtpReport deeper = meter.BuildReport(Seconds(2.0), Milliseconds(30),
                                             Milliseconds(10), 1500, 1, cc);
  EXPECT_TRUE(deeper.stalled);
  EXPECT_GT(deeper.avg_rtt, stalled.avg_rtt);
}

TEST(SenderTest, BlackHoleProducesStalledReports) {
  LinkConfig link = DefaultLink();
  link.random_loss = 1.0;  // black hole: no data ever delivered, no ACKs
  TestNet t(link, 10 * 1500);
  // Stop between RTO fires (they land on whole seconds and reset the silence
  // clock): the last MTP report at ~2.88s carries a ~0.88s silence bound.
  t.net->Run(Seconds(2.9));
  EXPECT_TRUE(t.controller->last_report.stalled);
  EXPECT_EQ(t.controller->last_report.acked_packets, 0u);
  EXPECT_EQ(t.controller->last_report.thr_bps, 0.0);
  EXPECT_GT(t.controller->last_report.avg_rtt, 0);
}

TEST(SenderTest, MtpReportsArriveAtConfiguredCadence) {
  TestNet t(DefaultLink(), 20 * 1500);
  t.net->Run(Seconds(3.0));
  // 3s / 30ms = 100 ticks (+-1 for scheduling boundaries).
  EXPECT_NEAR(t.controller->ticks, 100, 2);
  EXPECT_EQ(t.controller->last_report.mtp, Milliseconds(30));
  EXPECT_GT(t.controller->last_report.thr_bps, 0.0);
  EXPECT_GT(t.controller->last_report.acked_packets, 0u);
}

TEST(SenderTest, PacedSenderRespectsPacingRate) {
  // Pacing at 20 Mbps with a huge window: throughput == pacing rate.
  TestNet t(DefaultLink(), 100 * 375'000, Mbps(20));
  t.net->Run(Seconds(5.0));
  const double thr =
      t.net->flow_stats(0).throughput_mbps.MeanOver(Seconds(1.0), Seconds(5.0));
  EXPECT_NEAR(thr, 20.0, 1.0);
}

TEST(SenderTest, StopHaltsTransmission) {
  TestNet t(DefaultLink(), 20 * 1500);
  t.net->Run(Seconds(1.0));
  t.net->sender(0).Stop();
  const uint64_t sent_at_stop = t.net->flow_stats(0).bytes_sent;
  t.net->Run(Seconds(3.0));
  EXPECT_EQ(t.net->flow_stats(0).bytes_sent, sent_at_stop);
  EXPECT_EQ(t.net->sender(0).inflight_bytes(), 0u);  // drained
}

TEST(SenderTest, DeliveryRateEstimateTracksThroughput) {
  TestNet t(DefaultLink(), 2 * 375'000);
  t.net->Run(Seconds(5.0));
  EXPECT_NEAR(t.controller->last_ack.delivery_rate_bps / Mbps(100), 1.0, 0.1);
}

TEST(ReceiverTest, CountsReceivedBytes) {
  TestNet t(DefaultLink(), 20 * 1500);
  t.net->Run(Seconds(2.0));
  EXPECT_GT(t.net->flow_stats(0).bytes_acked, 0u);
}

// Regression: the receiver's delayed-ACK lambda used to capture a raw
// Sender*, so destroying a sender with ACKs still in flight (mid-simulation
// teardown) dereferenced freed memory when those events later fired. The
// lambda now holds a weak liveness handle; expired ACKs — and the sender's
// own pending MTP/RTO/pacing timers — must be silently discarded. Run under
// ASan to catch the use-after-free pre-fix.
TEST(ReceiverTest, AckAfterSenderDestroyedIsDiscarded) {
  EventQueue events;
  PacketPool pool;
  Receiver receiver(&events, &pool, nullptr, /*ack_return_delay=*/Milliseconds(15));
  SenderConfig config;
  auto sender = std::make_unique<Sender>(&events, &pool, /*flow_id=*/0, Route{&receiver},
                                         std::make_unique<FixedWindow>(20 * 1500), config);
  receiver.set_sender(sender.get());

  // Start and deliver a few packets: each Accept schedules a delayed ACK.
  sender->Start();
  events.RunUntil(Milliseconds(5));
  EXPECT_GT(receiver.received_bytes(), 0u);

  // Tear the sender down while ACKs (and its MTP/RTO timers) are pending.
  sender.reset();
  events.RunUntil(Seconds(2.0));  // fires every stale event; must not crash
  EXPECT_GT(receiver.received_bytes(), 0u);
}

}  // namespace
}  // namespace astraea
