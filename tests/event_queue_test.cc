#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"

namespace astraea {
namespace {

TEST(EventQueueTest, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(Milliseconds(30), [&] { order.push_back(3); });
  q.Schedule(Milliseconds(10), [&] { order.push_back(1); });
  q.Schedule(Milliseconds(20), [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), Milliseconds(30));
}

TEST(EventQueueTest, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(Milliseconds(10), [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.Schedule(Milliseconds(10), [&] { ++fired; });
  q.Schedule(Milliseconds(20), [&] { ++fired; });
  q.RunUntil(Milliseconds(15));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), Milliseconds(15));
  q.RunUntil(Milliseconds(25));
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      q.ScheduleAfter(Milliseconds(1), recurse);
    }
  };
  q.Schedule(0, recurse);
  q.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.now(), Milliseconds(4));
}

TEST(EventQueueTest, CancelSkipsEvent) {
  EventQueue q;
  int fired = 0;
  const uint64_t id = q.Schedule(Milliseconds(10), [&] { ++fired; });
  q.Schedule(Milliseconds(20), [&] { ++fired; });
  q.Cancel(id);
  q.RunAll();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, ExecutedCountsOnlyRunEvents) {
  EventQueue q;
  q.Schedule(Milliseconds(1), [] {});
  const uint64_t id = q.Schedule(Milliseconds(2), [] {});
  q.Cancel(id);
  q.RunAll();
  EXPECT_EQ(q.executed(), 1u);
}

}  // namespace
}  // namespace astraea
