#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/util/rng.h"

namespace astraea {
namespace {

TEST(EventQueueTest, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(Milliseconds(30), [&] { order.push_back(3); });
  q.Schedule(Milliseconds(10), [&] { order.push_back(1); });
  q.Schedule(Milliseconds(20), [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), Milliseconds(30));
}

TEST(EventQueueTest, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(Milliseconds(10), [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.Schedule(Milliseconds(10), [&] { ++fired; });
  q.Schedule(Milliseconds(20), [&] { ++fired; });
  q.RunUntil(Milliseconds(15));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), Milliseconds(15));
  q.RunUntil(Milliseconds(25));
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      q.ScheduleAfter(Milliseconds(1), recurse);
    }
  };
  q.Schedule(0, recurse);
  q.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.now(), Milliseconds(4));
}

TEST(EventQueueTest, CancelSkipsEvent) {
  EventQueue q;
  int fired = 0;
  const uint64_t id = q.Schedule(Milliseconds(10), [&] { ++fired; });
  q.Schedule(Milliseconds(20), [&] { ++fired; });
  q.Cancel(id);
  q.RunAll();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, ExecutedCountsOnlyRunEvents) {
  EventQueue q;
  q.Schedule(Milliseconds(1), [] {});
  const uint64_t id = q.Schedule(Milliseconds(2), [] {});
  q.Cancel(id);
  q.RunAll();
  EXPECT_EQ(q.executed(), 1u);
}

TEST(EventQueueTest, RunUntilLandsOnBoundaryWhenDrainedEarly) {
  EventQueue q;
  int fired = 0;
  q.Schedule(Milliseconds(10), [&] { ++fired; });
  q.RunUntil(Milliseconds(50));  // queue drains at 10ms; clock must still land on 50ms
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), Milliseconds(50));
  q.RunUntil(Milliseconds(50));  // idempotent on an empty queue
  EXPECT_EQ(q.now(), Milliseconds(50));
}

// Same-tick events must dispatch in schedule order even when interleaved with
// other ticks across calendar bucket boundaries — the scramble below lands
// duplicates of each timestamp in different insertion epochs.
TEST(EventQueueTest, SameTickFifoAcrossBucketBoundaries) {
  EventQueue q;
  std::vector<std::pair<TimeNs, int>> order;
  constexpr int kEvents = 2000;
  for (int i = 0; i < kEvents; ++i) {
    const TimeNs when = Milliseconds((i * 7919) % 50);  // 50 ticks, 40 duplicates each
    q.Schedule(when, [&order, when, i] { order.emplace_back(when, i); });
  }
  q.RunAll();
  ASSERT_EQ(order.size(), static_cast<size_t>(kEvents));
  for (size_t i = 1; i < order.size(); ++i) {
    ASSERT_LE(order[i - 1].first, order[i].first);
    if (order[i - 1].first == order[i].first) {
      ASSERT_LT(order[i - 1].second, order[i].second);  // FIFO within a tick
    }
  }
}

// Events far beyond the calendar window go to the overflow ladder; draining
// the near-term window must rotate the calendar onto them, preserving order
// across skews from nanoseconds to hours.
TEST(EventQueueTest, OverflowLadderRotatesAtLargeTimeSkews) {
  EventQueue q;
  std::vector<uint64_t> order;
  std::vector<TimeNs> whens;
  uint64_t x = 42;
  for (int i = 0; i < 500; ++i) {
    // Log-uniform-ish skews: 1us .. ~2.3 hours.
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const TimeNs when = Microseconds(1) << ((x >> 59));  // 1us * 2^[0,31]
    whens.push_back(when);
    q.Schedule(when, [&order, i] { order.push_back(static_cast<uint64_t>(i)); });
  }
  q.RunAll();
  ASSERT_EQ(order.size(), 500u);
  for (size_t i = 1; i < order.size(); ++i) {
    const TimeNs a = whens[order[i - 1]];
    const TimeNs b = whens[order[i]];
    ASSERT_TRUE(a < b || (a == b && order[i - 1] < order[i]));
  }
  EXPECT_GT(q.calendar_rotations() + q.calendar_rebuilds(), 0u);
}

// A cancelled event's pooled slot is recycled by later schedules; the stale
// handle's generation must no longer match, so cancelling it again (or the
// original callback) cannot touch the new occupant.
TEST(EventQueueTest, CancelThenRescheduleReusesSlotWithoutStaleFire) {
  EventQueue q;
  int stale_fired = 0;
  int fresh_fired = 0;
  const uint64_t stale = q.Schedule(Milliseconds(10), [&] { ++stale_fired; });
  q.Cancel(stale);
  // Drain so the cancelled slot is freed, then reschedule into it.
  q.RunAll();
  const uint64_t fresh = q.Schedule(Milliseconds(20), [&] { ++fresh_fired; });
  EXPECT_NE(stale, fresh);  // generation differs even if the slot index matches
  q.Cancel(stale);          // stale handle: must be a no-op, not cancel `fresh`
  q.RunAll();
  EXPECT_EQ(stale_fired, 0);
  EXPECT_EQ(fresh_fired, 1);
  EXPECT_GT(q.slots_recycled(), 0u);
}

// Regression for the seed scheduler's O(n) cancel scan: 100k timers that are
// each cancelled and re-armed (the sender's RTO pattern). Linear-scan
// cancellation makes this quadratic (~10^10 steps); the pooled O(1) Cancel
// keeps it well under the generous wall-clock bound. The executed-events
// counter pins the exact amount of work done.
TEST(EventQueueTest, HundredThousandTimerChurnIsSubQuadratic) {
  constexpr size_t kTimers = 100'000;
  EventQueue q;
  const auto start = std::chrono::steady_clock::now();
  std::vector<uint64_t> ids(kTimers);
  uint64_t fired = 0;
  // Arm, cancel and re-arm every timer; only the re-armed generation fires.
  for (size_t i = 0; i < kTimers; ++i) {
    ids[i] = q.Schedule(Milliseconds(100) + static_cast<TimeNs>(i), [&] { ++fired; });
  }
  for (size_t i = 0; i < kTimers; ++i) {
    q.Cancel(ids[i]);
  }
  EXPECT_EQ(q.pending(), 0u);
  for (size_t i = 0; i < kTimers; ++i) {
    q.Schedule(Milliseconds(200) + static_cast<TimeNs>(i), [&] { ++fired; });
  }
  q.RunAll();
  EXPECT_EQ(fired, kTimers);
  EXPECT_EQ(q.executed(), kTimers);  // cancelled events never dispatched
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  // ~300k O(1) operations: milliseconds in practice. The bound is two orders
  // of magnitude slack for CI noise, yet another two-plus below quadratic.
  EXPECT_LT(elapsed, 10.0);
}

// Differential check: a random schedule/cancel/run workload against a
// std::multimap reference executing the same (when, insertion-order) total
// order. The reference keys ties on an insertion counter — the queue's
// documented FIFO tie-break — because cancel handles encode slot/generation
// and do not themselves order events.
TEST(EventQueueTest, RandomizedDifferentialAgainstOrderedMapReference) {
  EventQueue q;
  using Key = std::pair<TimeNs, uint64_t>;  // (when, insertion counter)
  std::map<Key, uint64_t> reference;        // -> step label
  std::map<uint64_t, Key> live;             // cancel handle -> key
  std::vector<uint64_t> executed_queue;
  std::vector<uint64_t> executed_reference;
  Rng rng(20260808);
  TimeNs ref_now = 0;
  uint64_t insertions = 0;

  auto run_reference_until = [&](TimeNs until) {
    while (!reference.empty() && reference.begin()->first.first <= until) {
      const auto it = reference.begin();
      ref_now = it->first.first;
      executed_reference.push_back(it->second);
      reference.erase(it);
    }
    ref_now = std::max(ref_now, until);
  };

  for (int step = 0; step < 20'000; ++step) {
    const double roll = rng.Uniform();
    if (roll < 0.55) {
      const TimeNs when = q.now() + rng.UniformInt(0, Milliseconds(40));
      const uint64_t id =
          q.Schedule(when, [&executed_queue, step] {
            executed_queue.push_back(static_cast<uint64_t>(step));
          });
      const Key key{when, insertions++};
      reference.emplace(key, static_cast<uint64_t>(step));
      live[id] = key;
    } else if (roll < 0.75 && !live.empty()) {
      // Cancel a pseudo-random live event.
      auto it = live.begin();
      std::advance(it, rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      q.Cancel(it->first);
      reference.erase(it->second);
      live.erase(it);
    } else {
      const TimeNs until = q.now() + rng.UniformInt(0, Milliseconds(10));
      q.RunUntil(until);
      run_reference_until(until);
      // Drop reference entries for events the queue just executed, so `live`
      // only holds genuinely pending handles.
      for (auto it = live.begin(); it != live.end();) {
        it = reference.count(it->second) == 0 ? live.erase(it) : std::next(it);
      }
      ASSERT_EQ(q.now(), ref_now);
      ASSERT_EQ(executed_queue, executed_reference);
    }
  }
  q.RunAll();
  run_reference_until(std::numeric_limits<TimeNs>::max());
  EXPECT_EQ(executed_queue, executed_reference);
  EXPECT_EQ(q.pending(), 0u);
}

}  // namespace
}  // namespace astraea
