#include <gtest/gtest.h>

#include "bench/harness/experiments.h"
#include "src/core/schemes.h"

namespace astraea {
namespace {

StaggeredConfig SmallConfig() {
  StaggeredConfig config = DefaultStaggeredConfig();
  config.start_interval = Seconds(8.0);
  config.flow_duration = Seconds(24.0);
  config.until = Seconds(40.0);
  return config;
}

TEST(ExperimentsTest, StaggeredScenarioBuildsThreeFlows) {
  auto scenario = RunStaggeredScenario("cubic", SmallConfig(), 1);
  EXPECT_EQ(scenario->network().flow_count(), 3u);
  // Flow 1 starts at 8s and runs 24s.
  EXPECT_EQ(scenario->network().flow_stats(1).started_at, Seconds(8.0));
  EXPECT_EQ(scenario->network().flow_stats(1).stopped_at, Seconds(32.0));
}

TEST(ExperimentsTest, AstraeaConvergenceSummaryIsHealthy) {
  const SchemeConvergenceSummary s = MeasureStaggeredConvergence("astraea", SmallConfig(), 1);
  EXPECT_EQ(s.scheme, "astraea");
  EXPECT_GT(s.total_events, 3);
  EXPECT_GE(s.converged_events, s.total_events / 2);
  EXPECT_GT(s.avg_jain, 0.9);
  EXPECT_GT(s.utilization, 0.85);
  EXPECT_GT(s.avg_convergence_s, 0.0);
  EXPECT_LT(s.avg_convergence_s, 8.0);
}

TEST(ExperimentsTest, JainSamplesPooledAcrossReps) {
  const auto one = CollectJainSamples("cubic", SmallConfig(), 1);
  const auto two = CollectJainSamples("cubic", SmallConfig(), 2);
  EXPECT_GT(one.size(), 10u);
  EXPECT_NEAR(static_cast<double>(two.size()), 2.0 * one.size(), 4.0);
  for (double j : two) {
    EXPECT_GE(j, 0.0);
    EXPECT_LE(j, 1.0 + 1e-9);
  }
}

TEST(SchemesTest, EveryRegisteredNameProducesMatchingController) {
  SchemeOptions options;
  for (const std::string& name : AllSchemeNames()) {
    CcFactory factory = MakeSchemeFactory(name, &options);
    auto cc = factory();
    ASSERT_NE(cc, nullptr) << name;
    EXPECT_EQ(cc->name(), name);
    // Factories must be reusable (one factory, many flows).
    auto cc2 = factory();
    EXPECT_NE(cc.get(), cc2.get());
  }
}

TEST(SchemesTest, AstraeaFlowsShareOnePolicyInstance) {
  SchemeOptions options;
  CcFactory factory = MakeSchemeFactory("astraea", &options);
  ASSERT_NE(options.astraea_policy, nullptr);
  const Policy* shared = options.astraea_policy.get();
  // Creating more factories reuses the loaded policy.
  MakeSchemeFactory("astraea", &options);
  EXPECT_EQ(options.astraea_policy.get(), shared);
}

TEST(SchemesTest, VivaceOptionsPropagate) {
  SchemeOptions options;
  options.vivace.theta0 = 4.2;
  CcFactory factory = MakeSchemeFactory("vivace", &options);
  auto cc = factory();
  EXPECT_EQ(cc->name(), "vivace");
}

}  // namespace
}  // namespace astraea
