#include <gtest/gtest.h>

#include "bench/harness/metrics.h"
#include "bench/harness/scenario.h"
#include "bench/harness/table.h"

namespace astraea {
namespace {

TEST(DumbbellScenarioTest, BufferSizedInBdpMultiples) {
  DumbbellConfig config;
  config.bandwidth = Mbps(100);
  config.base_rtt = Milliseconds(30);
  config.buffer_bdp = 2.0;
  DumbbellScenario scenario(config);
  EXPECT_EQ(scenario.BufferBytes(), 2u * 375'000u);
}

TEST(DumbbellScenarioTest, SchemeNamesResolve) {
  DumbbellConfig config;
  DumbbellScenario scenario(config);
  for (const std::string& name :
       {"newreno", "cubic", "vegas", "bbr", "copa", "vivace", "aurora", "orca", "remy"}) {
    EXPECT_GE(scenario.AddFlow(name, 0), 0) << name;
  }
}

TEST(MetricsTest, JainPerTimeslotSkipsSingleFlowSlots) {
  DumbbellConfig config;
  config.bandwidth = Mbps(50);
  config.base_rtt = Milliseconds(20);
  DumbbellScenario scenario(config);
  scenario.AddFlow("cubic", 0);
  scenario.AddFlow("cubic", Seconds(5.0));
  scenario.Run(Seconds(10.0));

  // Slots before the second flow starts must be skipped entirely.
  const auto jains = JainPerTimeslot(scenario.network(), 0, Seconds(10.0), Seconds(1.0));
  EXPECT_LE(jains.size(), 5u);
  EXPECT_GE(jains.size(), 4u);
  for (double j : jains) {
    EXPECT_GE(j, 0.5);
    EXPECT_LE(j, 1.0);
  }
}

TEST(MetricsTest, UtilizationOfSaturatedLinkNearOne) {
  DumbbellConfig config;
  config.bandwidth = Mbps(50);
  config.base_rtt = Milliseconds(20);
  DumbbellScenario scenario(config);
  scenario.AddFlow("cubic", 0);
  scenario.Run(Seconds(10.0));
  const double util = LinkUtilization(scenario.network(), 0, Seconds(2.0), Seconds(10.0));
  EXPECT_GT(util, 0.9);
  EXPECT_LE(util, 1.05);
}

TEST(MetricsTest, ConvergenceMeasurementFindsEntryTime) {
  DumbbellConfig config;
  config.bandwidth = Mbps(100);
  config.base_rtt = Milliseconds(30);
  DumbbellScenario scenario(config);
  scenario.AddFlow("astraea", 0);
  scenario.AddFlow("astraea", Seconds(8.0));
  scenario.Run(Seconds(30.0));

  const ConvergenceMeasurement m =
      MeasureConvergence(scenario.network(), 1, Seconds(8.0), 50.0, 0.10, Seconds(1.0),
                         Seconds(30.0));
  ASSERT_GE(m.convergence_time, 0) << "flow never converged";
  EXPECT_LT(m.convergence_time, Seconds(10.0));
  EXPECT_LT(m.stability_mbps, 10.0);
}

TEST(MetricsTest, AggregateLossOnCleanDelayBasedFlowIsTiny) {
  DumbbellConfig config;
  config.bandwidth = Mbps(50);
  config.base_rtt = Milliseconds(20);
  config.buffer_bdp = 2.0;
  DumbbellScenario scenario(config);
  scenario.AddFlow("vegas", 0);
  scenario.Run(Seconds(10.0));
  EXPECT_LT(AggregateLossRatio(scenario.network()), 0.001);
}

TEST(ConsoleTableTest, NumFormatsPrecision) {
  EXPECT_EQ(ConsoleTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(ConsoleTable::Num(2.0, 0), "2");
}

TEST(BenchRepsTest, DefaultsWithoutEnv) {
  unsetenv("ASTRAEA_BENCH_REPS");
  EXPECT_EQ(BenchReps(3), 3);
  setenv("ASTRAEA_BENCH_REPS", "7", 1);
  EXPECT_EQ(BenchReps(3), 7);
  unsetenv("ASTRAEA_BENCH_REPS");
}

}  // namespace
}  // namespace astraea
