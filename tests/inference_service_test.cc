#include <gtest/gtest.h>

#include "src/core/inference_service.h"
#include "src/util/rng.h"

namespace astraea {
namespace {

Mlp MakeActor(uint64_t seed = 1) {
  Rng rng(seed);
  return Mlp({8, 16, 1}, OutputActivation::kTanh, &rng);
}

TEST(InferenceServiceTest, BatchedAnswersMatchDirectInference) {
  Mlp actor = MakeActor();
  Mlp reference = MakeActor();  // same seed: identical weights
  InferenceService service(std::move(actor));

  Rng data(2);
  std::vector<std::vector<float>> states;
  std::vector<double> answers(5, -99.0);
  for (int i = 0; i < 5; ++i) {
    std::vector<float> s(8);
    for (auto& v : s) {
      v = static_cast<float>(data.Uniform(-1.0, 1.0));
    }
    states.push_back(s);
  }
  for (int i = 0; i < 5; ++i) {
    service.Submit(states[static_cast<size_t>(i)],
                   [&answers, i](double a) { answers[static_cast<size_t>(i)] = a; });
  }
  EXPECT_EQ(service.pending(), 5u);
  EXPECT_EQ(service.Flush(), 5u);
  EXPECT_EQ(service.pending(), 0u);
  for (int i = 0; i < 5; ++i) {
    const float expected = reference.Infer(states[static_cast<size_t>(i)])[0];
    EXPECT_NEAR(answers[static_cast<size_t>(i)], expected, 1e-6);
  }
}

TEST(InferenceServiceTest, FlushOnEmptyIsNoOp) {
  InferenceService service(MakeActor());
  EXPECT_EQ(service.Flush(), 0u);
  EXPECT_EQ(service.total_batches(), 0u);
}

TEST(InferenceServiceTest, StatisticsAccumulate) {
  InferenceService service(MakeActor());
  const std::vector<float> s(8, 0.1f);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      service.Submit(s, [](double) {});
    }
    service.Flush();
  }
  EXPECT_EQ(service.total_requests(), 12u);
  EXPECT_EQ(service.total_batches(), 3u);
  EXPECT_EQ(service.max_batch(), 4u);
}

TEST(InferenceServiceTest, ActionsAreClamped) {
  InferenceService service(MakeActor());
  const std::vector<float> s(8, 5.0f);  // extreme inputs
  double action = 99.0;
  service.Submit(s, [&action](double a) { action = a; });
  service.Flush();
  EXPECT_GE(action, -1.0);
  EXPECT_LE(action, 1.0);
}

// A callback that re-Submits while Flush() is dispatching must not corrupt
// the pending queues: the resubmission lands in the *next* batch, untouched.
TEST(InferenceServiceTest, CallbackMayResubmitDuringFlush) {
  Mlp actor = MakeActor();
  Mlp reference = MakeActor();
  InferenceService service(std::move(actor));

  const std::vector<float> s1(8, 0.25f);
  const std::vector<float> s2(8, -0.5f);
  std::vector<double> first_round;
  double second_round = -99.0;
  for (const auto& s : {s1, s2}) {
    service.Submit(s, [&service, &first_round, &second_round, s2](double a) {
      first_round.push_back(a);
      // Reentrant submission from inside the dispatch loop.
      service.Submit(s2, [&second_round](double b) { second_round = b; });
    });
  }

  EXPECT_EQ(service.Flush(), 2u);
  ASSERT_EQ(first_round.size(), 2u);
  EXPECT_NEAR(first_round[0], reference.Infer(s1)[0], 1e-6);
  EXPECT_NEAR(first_round[1], reference.Infer(s2)[0], 1e-6);
  // Both reentrant submissions are pending, none was served early.
  EXPECT_EQ(service.pending(), 2u);
  EXPECT_EQ(second_round, -99.0);

  EXPECT_EQ(service.Flush(), 2u);
  EXPECT_NEAR(second_round, reference.Infer(s2)[0], 1e-6);
  EXPECT_EQ(service.pending(), 0u);
  EXPECT_EQ(service.total_requests(), 4u);
  EXPECT_EQ(service.total_batches(), 2u);
}

TEST(InferenceServiceTest, DefaultBatchWindowIsFiveMs) {
  InferenceService service(MakeActor());
  EXPECT_EQ(service.batch_window(), Milliseconds(5));
}

}  // namespace
}  // namespace astraea
