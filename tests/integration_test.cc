// End-to-end behavioural tests: the paper's headline claims, at test scale.

#include <gtest/gtest.h>

#include "bench/harness/metrics.h"
#include "bench/harness/scenario.h"

namespace astraea {
namespace {

TEST(IntegrationTest, AstraeaHomogeneousFlowsNearOptimalFairness) {
  // Scaled-down §5.1.1: 3 flows, 100 Mbps / 30 ms / 1 BDP.
  DumbbellConfig config;
  config.bandwidth = Mbps(100);
  config.base_rtt = Milliseconds(30);
  config.buffer_bdp = 1.0;
  DumbbellScenario scenario(config);
  for (int i = 0; i < 3; ++i) {
    scenario.AddFlow("astraea", Seconds(8.0 * i));
  }
  scenario.Run(Seconds(45.0));

  const double jain =
      AverageJain(scenario.network(), Seconds(22.0), Seconds(45.0), Milliseconds(500));
  EXPECT_GT(jain, 0.95);
  const double util = LinkUtilization(scenario.network(), 0, Seconds(22.0), Seconds(45.0));
  EXPECT_GT(util, 0.9);
}

TEST(IntegrationTest, AstraeaConvergesFasterThanVivace) {
  auto convergence_of = [](const std::string& scheme) {
    DumbbellConfig config;
    config.bandwidth = Mbps(100);
    config.base_rtt = Milliseconds(30);
    config.buffer_bdp = 1.0;
    DumbbellScenario scenario(config);
    scenario.AddFlow(scheme, 0);
    scenario.AddFlow(scheme, Seconds(10.0));
    scenario.Run(Seconds(40.0));
    const ConvergenceMeasurement m = MeasureConvergence(
        scenario.network(), 1, Seconds(10.0), 50.0, 0.15, Seconds(1.0), Seconds(40.0));
    return m.convergence_time < 0 ? Seconds(30.0) : m.convergence_time;
  };
  const TimeNs astraea_time = convergence_of("astraea");
  const TimeNs vivace_time = convergence_of("vivace");
  EXPECT_LT(astraea_time, vivace_time);
}

TEST(IntegrationTest, AstraeaMoreStableThanCubic) {
  auto stability_of = [](const std::string& scheme) {
    DumbbellConfig config;
    config.bandwidth = Mbps(100);
    config.base_rtt = Milliseconds(30);
    config.buffer_bdp = 1.0;
    DumbbellScenario scenario(config);
    scenario.AddFlow(scheme, 0);
    scenario.AddFlow(scheme, 0);
    scenario.Run(Seconds(30.0));
    return scenario.network().flow_stats(1).throughput_mbps.StdDevOver(Seconds(10.0),
                                                                       Seconds(30.0));
  };
  EXPECT_LT(stability_of("astraea"), stability_of("cubic"));
}

TEST(IntegrationTest, AstraeaRttFairnessBeatsLossBasedTcp) {
  // Two flows, 30ms vs 150ms base RTT on a shallow buffer. Loss-based AIMD
  // throughput scales ~1/RTT, so NewReno splits very unevenly; Astraea's
  // backlog-target control is RTT-independent (Fig. 8's claim).
  auto jain_of = [](const std::string& scheme) {
    DumbbellConfig config;
    config.bandwidth = Mbps(100);
    config.base_rtt = Milliseconds(30);
    config.buffer_bdp = 0.5;
    DumbbellScenario scenario(config);
    scenario.AddFlow(scheme, 0, -1, 0);
    scenario.AddFlow(scheme, 0, -1, Milliseconds(120));
    scenario.Run(Seconds(40.0));
    const auto thrs = FlowMeanThroughputs(scenario.network(), Seconds(20.0), Seconds(40.0));
    return JainIndex(thrs);
  };
  const double astraea_jain = jain_of("astraea");
  EXPECT_GT(astraea_jain, jain_of("newreno"));
  EXPECT_GT(astraea_jain, 0.85);
}

TEST(IntegrationTest, AstraeaSurvivesRandomLossLikeBbr) {
  // Satellite-flavoured: random loss must not crater throughput (unlike
  // loss-based CUBIC). Scaled down from Fig. 20.
  auto util_of = [](const std::string& scheme) {
    DumbbellConfig config;
    config.bandwidth = Mbps(40);
    config.base_rtt = Milliseconds(100);
    config.buffer_bdp = 1.0;
    config.random_loss = 0.0074;
    DumbbellScenario scenario(config);
    scenario.AddFlow(scheme, 0);
    scenario.Run(Seconds(30.0));
    return LinkUtilization(scenario.network(), 0, Seconds(10.0), Seconds(30.0));
  };
  const double astraea_util = util_of("astraea");
  const double cubic_util = util_of("cubic");
  EXPECT_GT(astraea_util, 0.7);
  EXPECT_GT(astraea_util, cubic_util * 1.5);
}

TEST(IntegrationTest, MultiBottleneckSharesFollowMaxMin) {
  // Fig. 11 topology, small: FS-1 = 2 flows on link1 (100 Mbps);
  // FS-2 = 2 flows on link1+link2 (20 Mbps). Max-min: FS-2 flows get 10,
  // FS-1 flows get 40 each.
  Network net(1);
  SchemeOptions options;
  LinkConfig l1;
  l1.rate = Mbps(100);
  l1.propagation_delay = Milliseconds(15);
  l1.buffer_bytes = 2 * 375'000;
  net.AddLink(l1);
  LinkConfig l2;
  l2.rate = Mbps(20);
  l2.propagation_delay = Milliseconds(1);
  l2.buffer_bytes = 150'000;
  net.AddLink(l2);

  CcFactory factory = MakeSchemeFactory("astraea", &options);
  for (int i = 0; i < 2; ++i) {
    FlowSpec spec;
    spec.scheme = "astraea-fs1";
    spec.make_cc = factory;
    spec.link_path = {0};
    net.AddFlow(spec);
  }
  for (int i = 0; i < 2; ++i) {
    FlowSpec spec;
    spec.scheme = "astraea-fs2";
    spec.make_cc = factory;
    spec.link_path = {0, 1};
    net.AddFlow(spec);
  }
  net.Run(Seconds(40.0));

  const auto thr = FlowMeanThroughputs(net, Seconds(20.0), Seconds(40.0));
  EXPECT_NEAR(thr[2], 10.0, 3.0);
  EXPECT_NEAR(thr[3], 10.0, 3.0);
  EXPECT_NEAR(thr[0], 40.0, 8.0);
  EXPECT_NEAR(thr[1], 40.0, 8.0);
}

TEST(IntegrationTest, AstraeaIsReasonablyFriendlyToCubic) {
  // Fig. 14 shape: Astraea vs 1 CUBIC flow should be within an order of
  // magnitude of equal share (unlike Aurora/BBR's 10-60x).
  DumbbellConfig config;
  config.bandwidth = Mbps(100);
  config.base_rtt = Milliseconds(30);
  config.buffer_bdp = 1.0;
  DumbbellScenario scenario(config);
  scenario.AddFlow("astraea", 0);
  scenario.AddFlow("cubic", 0);
  scenario.Run(Seconds(40.0));
  const auto thr = FlowMeanThroughputs(scenario.network(), Seconds(10.0), Seconds(40.0));
  const double ratio = thr[0] / std::max(thr[1], 0.1);
  EXPECT_GT(ratio, 0.1);
  EXPECT_LT(ratio, 5.0);
}

TEST(IntegrationTest, AstraeaTracksTraceDrivenCapacity) {
  // Square-wave capacity: throughput must follow both levels (Fig. 13 shape).
  DumbbellConfig config;
  config.base_rtt = Milliseconds(40);
  config.buffer_bdp = 8.0;
  config.trace = std::make_shared<RateTrace>(
      MakeSquareWaveTrace(Seconds(60.0), Seconds(5.0), Mbps(20), Mbps(80)));
  DumbbellScenario scenario(config);
  scenario.AddFlow("astraea", 0);
  scenario.Run(Seconds(40.0));

  const Network& net = scenario.network();
  // High phase (t in [10,15)): ~80; low phase (t in [15,20)): ~20.
  const double high = net.flow_stats(0).throughput_mbps.MeanOver(Seconds(21.0), Seconds(25.0));
  const double low = net.flow_stats(0).throughput_mbps.MeanOver(Seconds(26.0), Seconds(30.0));
  EXPECT_GT(high, 50.0);
  EXPECT_LT(low, 30.0);
}

}  // namespace
}  // namespace astraea
