// Tests for the runtime invariant checker (src/sim/invariants.h): clean runs
// report nothing and are bit-identical to unchecked runs; an intentionally
// injected simulator bug (the sim.queue.drop_uncounted failpoint) is caught
// in fatal mode, counted in report mode, and visibly diverges an event trace
// — the same signal the golden-trace differential regression keys on.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/cc/cubic.h"
#include "src/sim/invariants.h"
#include "src/sim/network.h"
#include "src/sim/trace.h"
#include "src/util/failpoint.h"
#include "src/util/metrics.h"

namespace astraea {
namespace {

FlowSpec CubicFlow(TimeNs start = 0, TimeNs duration = -1) {
  FlowSpec spec;
  spec.scheme = "cubic";
  spec.make_cc = [] { return std::make_unique<Cubic>(); };
  spec.start = start;
  spec.duration = duration;
  return spec;
}

// One dumbbell scenario with both loss kinds (queue drops from the shallow
// buffer, iid wire loss) so every checker site gets exercised. Returns the
// full in-memory event trace when `tracer` is given.
uint64_t RunScenario(Tracer* tracer = nullptr) {
  Network net(7);
  LinkConfig link;
  link.rate = Mbps(20);
  link.propagation_delay = Milliseconds(10);
  link.buffer_bytes = 50'000;  // shallow: forces queue drops
  link.random_loss = 0.01;
  net.AddLink(link);
  net.AddFlow(CubicFlow());
  if (tracer != nullptr) {
    net.SetTracer(tracer);
  }
  net.Run(Seconds(3.0));
  return net.flow_stats(0).bytes_acked;
}

std::vector<TraceEvent> RunTraced() {
  Tracer tracer("", Tracer::Format::kNone, 1 << 18);
  RunScenario(&tracer);
  return tracer.BufferedEvents();
}

TEST(InvariantsTest, CleanRunReportsNothingInFatalMode) {
  invariants::ScopedMode fatal(invariants::Mode::kFatal);
  const uint64_t before = invariants::ViolationCount();
  EXPECT_GT(RunScenario(), 0u);  // would have thrown on any violation
  EXPECT_EQ(invariants::ViolationCount(), before);
}

TEST(InvariantsTest, CheckedRunIsBitIdenticalToUncheckedRun) {
  std::vector<TraceEvent> unchecked;
  {
    invariants::ScopedMode off(invariants::Mode::kOff);
    unchecked = RunTraced();
  }
  std::vector<TraceEvent> checked;
  {
    invariants::ScopedMode fatal(invariants::Mode::kFatal);
    checked = RunTraced();
  }
  ASSERT_GT(unchecked.size(), 1000u);
  ASSERT_EQ(unchecked.size(), checked.size());
  for (size_t i = 0; i < unchecked.size(); ++i) {
    EXPECT_EQ(unchecked[i].time, checked[i].time) << "event " << i;
    EXPECT_EQ(unchecked[i].type, checked[i].type) << "event " << i;
    EXPECT_EQ(unchecked[i].flow_id, checked[i].flow_id) << "event " << i;
    EXPECT_EQ(unchecked[i].link_id, checked[i].link_id) << "event " << i;
    EXPECT_EQ(unchecked[i].seq, checked[i].seq) << "event " << i;
    EXPECT_EQ(unchecked[i].a, checked[i].a) << "event " << i;
    EXPECT_EQ(unchecked[i].b, checked[i].b) << "event " << i;
  }
}

TEST(InvariantsTest, InjectedConservationBugThrowsInFatalMode) {
  invariants::ScopedMode fatal(invariants::Mode::kFatal);
  failpoint::Configure("sim.queue.drop_uncounted=1");
  EXPECT_THROW(RunScenario(), invariants::Violation);
  failpoint::Clear();
}

TEST(InvariantsTest, InjectedConservationBugIsCountedInReportMode) {
  invariants::ScopedMode report(invariants::Mode::kReport);
  const uint64_t before = invariants::ViolationCount();
  const uint64_t link_before =
      MetricsRegistry::Global().GetCounter("invariants.link.conservation").Value();
  failpoint::Configure("sim.queue.drop_uncounted=1");
  RunScenario();  // must NOT throw: report mode counts and continues
  failpoint::Clear();
  EXPECT_GT(invariants::ViolationCount(), before);
  EXPECT_GT(MetricsRegistry::Global().GetCounter("invariants.link.conservation").Value(),
            link_before);
}

TEST(InvariantsTest, InjectedBugDivergesEventTrace) {
  // The golden-trace regression catches the same injected bug: the recorded
  // event stream of a buggy run differs from the clean run's stream.
  std::vector<TraceEvent> clean;
  std::vector<TraceEvent> buggy;
  {
    invariants::ScopedMode off(invariants::Mode::kOff);
    clean = RunTraced();
    failpoint::Configure("sim.queue.drop_uncounted=1");
    buggy = RunTraced();
    failpoint::Clear();
  }
  ASSERT_GT(clean.size(), 0u);
  bool differs = clean.size() != buggy.size();
  for (size_t i = 0; !differs && i < clean.size(); ++i) {
    differs = clean[i].time != buggy[i].time || clean[i].type != buggy[i].type ||
              clean[i].seq != buggy[i].seq || clean[i].a != buggy[i].a ||
              clean[i].b != buggy[i].b;
  }
  EXPECT_TRUE(differs);
}

TEST(InvariantsTest, SchedulingInThePastThrowsInFatalMode) {
  invariants::ScopedMode fatal(invariants::Mode::kFatal);
  EventQueue events;
  events.Schedule(Milliseconds(10), [] {});
  events.RunUntil(Milliseconds(10));
  EXPECT_THROW(events.Schedule(Milliseconds(5), [] {}), invariants::Violation);
}

TEST(InvariantsTest, ScopedModeRestoresPreviousMode) {
  const invariants::Mode outer = invariants::CurrentMode();
  {
    invariants::ScopedMode report(invariants::Mode::kReport);
    EXPECT_EQ(invariants::CurrentMode(), invariants::Mode::kReport);
    {
      invariants::ScopedMode fatal(invariants::Mode::kFatal);
      EXPECT_EQ(invariants::CurrentMode(), invariants::Mode::kFatal);
    }
    EXPECT_EQ(invariants::CurrentMode(), invariants::Mode::kReport);
  }
  EXPECT_EQ(invariants::CurrentMode(), outer);
}

}  // namespace
}  // namespace astraea
