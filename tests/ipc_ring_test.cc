// Tests for the shared-memory SPSC ring (src/ipc/shm_ring.h): single-thread
// semantics, wraparound, full-ring backpressure, cross-thread stress (the
// TSan target), doorbell wakeups, region mapping validation, and a
// corruption fuzz pass — arbitrary bit flips in the shared region may make
// records disappear, but must never crash, fault, or hang a bounded caller.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <thread>
#include <vector>

#include "src/ipc/shm_ring.h"
#include "src/util/rng.h"

namespace astraea {
namespace ipc {
namespace {

// Small self-checking payload used throughout.
struct Record {
  uint64_t index;
  uint64_t check;
};

Record MakeRecord(uint64_t i) { return Record{i, i * 0x9E3779B97F4A7C15ull + 1}; }

bool RecordOk(const Record& r) { return r.check == r.index * 0x9E3779B97F4A7C15ull + 1; }

TEST(SpscRingTest, PushPopFifo) {
  MappedRegion region = CreateRegion();
  ASSERT_TRUE(region);
  SpscRing* ring = &region->request;

  EXPECT_EQ(ring->SizeApprox(), 0u);
  Record out{};
  EXPECT_FALSE(ring->TryPop(&out, sizeof(out)));

  for (uint64_t i = 0; i < 10; ++i) {
    const Record r = MakeRecord(i);
    ASSERT_TRUE(ring->TryPush(&r, sizeof(r)));
  }
  EXPECT_EQ(ring->SizeApprox(), 10u);
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(ring->TryPop(&out, sizeof(out)));
    EXPECT_EQ(out.index, i);
    EXPECT_TRUE(RecordOk(out));
  }
  EXPECT_FALSE(ring->TryPop(&out, sizeof(out)));
}

TEST(SpscRingTest, FullRingBackpressure) {
  MappedRegion region = CreateRegion();
  ASSERT_TRUE(region);
  SpscRing* ring = &region->request;

  for (uint64_t i = 0; i < kRingSlots; ++i) {
    const Record r = MakeRecord(i);
    ASSERT_TRUE(ring->TryPush(&r, sizeof(r))) << "slot " << i;
  }
  const Record extra = MakeRecord(999);
  EXPECT_FALSE(ring->TryPush(&extra, sizeof(extra))) << "push into a full ring must fail";
  EXPECT_EQ(ring->SizeApprox(), kRingSlots);

  // Freeing exactly one slot re-admits exactly one record.
  Record out{};
  ASSERT_TRUE(ring->TryPop(&out, sizeof(out)));
  EXPECT_EQ(out.index, 0u);
  EXPECT_TRUE(ring->TryPush(&extra, sizeof(extra)));
  EXPECT_FALSE(ring->TryPush(&extra, sizeof(extra)));
}

TEST(SpscRingTest, WraparoundPreservesData) {
  MappedRegion region = CreateRegion();
  ASSERT_TRUE(region);
  SpscRing* ring = &region->request;

  // Keep the ring near-full while cycling through it many times, so every
  // slot's sequence header wraps repeatedly.
  uint64_t next_push = 0;
  uint64_t next_pop = 0;
  const uint64_t total = 10 * kRingSlots + 7;
  while (next_pop < total) {
    while (next_push < total) {
      const Record r = MakeRecord(next_push);
      if (!ring->TryPush(&r, sizeof(r))) {
        break;
      }
      ++next_push;
    }
    Record out{};
    ASSERT_TRUE(ring->TryPop(&out, sizeof(out)));
    EXPECT_EQ(out.index, next_pop);
    EXPECT_TRUE(RecordOk(out));
    ++next_pop;
  }
  EXPECT_EQ(ring->SizeApprox(), 0u);
}

// The TSan target: one producer thread, one consumer thread, both rings of a
// region active at once (mirroring the request/response full duplex), futex
// doorbells exercised on both sides.
TEST(SpscRingTest, ConcurrentStressTwoRings) {
  MappedRegion region = CreateRegion();
  ASSERT_TRUE(region);
  constexpr uint64_t kCount = 50'000;

  auto produce = [](SpscRing* ring) {
    for (uint64_t i = 0; i < kCount; ++i) {
      const Record r = MakeRecord(i);
      while (!ring->TryPush(&r, sizeof(r))) {
        std::this_thread::yield();
      }
      WakeConsumer(ring);
    }
  };
  auto consume = [](SpscRing* ring, uint64_t* bad) {
    uint32_t seen = ring->doorbell.load(std::memory_order_acquire);
    for (uint64_t i = 0; i < kCount;) {
      Record out{};
      if (ring->TryPop(&out, sizeof(out))) {
        if (out.index != i || !RecordOk(out)) {
          ++*bad;
        }
        ++i;
        continue;
      }
      seen = WaitDoorbell(ring, seen, Milliseconds(1));
    }
  };

  uint64_t bad_request = 0;
  uint64_t bad_response = 0;
  std::thread client([&] {
    std::thread producer(produce, &region->request);
    consume(&region->response, &bad_response);
    producer.join();
  });
  std::thread server([&] {
    std::thread producer(produce, &region->response);
    consume(&region->request, &bad_request);
    producer.join();
  });
  client.join();
  server.join();
  EXPECT_EQ(bad_request, 0u);
  EXPECT_EQ(bad_response, 0u);
  EXPECT_EQ(region->request.SizeApprox(), 0u);
  EXPECT_EQ(region->response.SizeApprox(), 0u);
}

TEST(SpscRingTest, DoorbellWakesParkedConsumer) {
  MappedRegion region = CreateRegion();
  ASSERT_TRUE(region);
  SpscRing* ring = &region->request;

  Record out{};
  std::thread consumer([&] {
    uint32_t seen = ring->doorbell.load(std::memory_order_acquire);
    const TimeNs deadline = MonotonicNowNs() + Seconds(10.0);
    while (!ring->TryPop(&out, sizeof(out))) {
      ASSERT_LT(MonotonicNowNs(), deadline) << "consumer never woke";
      seen = WaitDoorbell(ring, seen, Milliseconds(50));
    }
  });
  // Give the consumer time to finish its spin phase and park on the futex,
  // so the wake path (not just the spin path) is exercised.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const Record r = MakeRecord(7);
  ASSERT_TRUE(ring->TryPush(&r, sizeof(r)));
  WakeConsumer(ring);
  consumer.join();
  EXPECT_EQ(out.index, 7u);
}

TEST(SpscRingTest, WaitDoorbellRespectsDeadlineWhenNothingArrives) {
  MappedRegion region = CreateRegion();
  ASSERT_TRUE(region);
  SpscRing* ring = &region->request;

  const uint32_t seen = ring->doorbell.load(std::memory_order_acquire);
  const TimeNs start = MonotonicNowNs();
  WaitDoorbell(ring, seen, Milliseconds(30));
  const TimeNs elapsed = MonotonicNowNs() - start;
  // Must come back around the deadline: not instantly forever-spinning the
  // caller's budget away, and far from unbounded.
  EXPECT_LT(elapsed, Seconds(5.0));
}

TEST(MappedRegionTest, SecondMappingSharesMemory) {
  MappedRegion client = CreateRegion();
  ASSERT_TRUE(client);
  const int fd2 = dup(client.fd());
  ASSERT_GE(fd2, 0);
  MappedRegion server = MapRegion(fd2);
  ASSERT_TRUE(server) << "server must accept a freshly created region";

  const Record r = MakeRecord(42);
  ASSERT_TRUE(client->request.TryPush(&r, sizeof(r)));
  Record out{};
  ASSERT_TRUE(server->request.TryPop(&out, sizeof(out)));
  EXPECT_EQ(out.index, 42u);
}

TEST(MappedRegionTest, RejectsWrongSizeAndBadHeader) {
  EXPECT_FALSE(MapRegion(-1));

  // A too-small file must be rejected before any field is trusted.
  char path[] = "/tmp/astraea_ring_bad_XXXXXX";
  const int small_fd = mkstemp(path);
  ASSERT_GE(small_fd, 0);
  ASSERT_EQ(ftruncate(small_fd, 128), 0);
  EXPECT_FALSE(MapRegion(small_fd));
  close(small_fd);

  // A right-sized file with a zeroed (wrong-magic) header is also rejected.
  char path2[] = "/tmp/astraea_ring_bad2_XXXXXX";
  const int zero_fd = mkstemp(path2);
  ASSERT_GE(zero_fd, 0);
  ASSERT_EQ(ftruncate(zero_fd, static_cast<off_t>(sizeof(ShmRegion))), 0);
  EXPECT_FALSE(MapRegion(zero_fd));
  close(zero_fd);
  unlink(path);
  unlink(path2);
}

// Corruption fuzz: flip random bits anywhere in a ring — cursors, sequence
// headers, payload — then hammer it with bounded push/pop. The contract is
// purely "no crash, no fault, no unbounded work"; lost or phantom records are
// expected and handled by the protocol layer's CRCs.
TEST(SpscRingTest, CorruptionFuzzNeverCrashesOrHangs) {
  MappedRegion region = CreateRegion();
  ASSERT_TRUE(region);
  SpscRing* ring = &region->request;
  Rng rng(1234);
  unsigned char* raw = reinterpret_cast<unsigned char*>(ring);

  for (int round = 0; round < 200; ++round) {
    // Random legitimate traffic first, so corruption lands on live state.
    for (int i = 0; i < 16; ++i) {
      const Record r = MakeRecord(static_cast<uint64_t>(rng.UniformInt(0, 1 << 20)));
      if (rng.Uniform() < 0.6) {
        ring->TryPush(&r, sizeof(r));
      } else {
        Record out{};
        ring->TryPop(&out, sizeof(out));
      }
    }
    for (int flip = 0; flip < 8; ++flip) {
      const size_t byte = static_cast<size_t>(rng.UniformInt(0, sizeof(SpscRing) - 1));
      raw[byte] ^= static_cast<unsigned char>(1u << rng.UniformInt(0, 7));
    }
    // Every operation stays individually bounded on arbitrary garbage.
    for (size_t i = 0; i < 2 * kRingSlots; ++i) {
      Record out{};
      ring->TryPop(&out, sizeof(out));
      const Record r = MakeRecord(i);
      ring->TryPush(&r, sizeof(r));
      ring->SizeApprox();
    }
    // The deadline must hold even when the doorbell word itself is garbage.
    WaitDoorbell(ring, ring->doorbell.load(std::memory_order_acquire) - 1, 0);
  }

  // Re-initialization restores a fully functional ring.
  ring->Init();
  for (uint64_t i = 0; i < kRingSlots; ++i) {
    const Record r = MakeRecord(i);
    ASSERT_TRUE(ring->TryPush(&r, sizeof(r)));
  }
  for (uint64_t i = 0; i < kRingSlots; ++i) {
    Record out{};
    ASSERT_TRUE(ring->TryPop(&out, sizeof(out)));
    EXPECT_EQ(out.index, i);
  }
}

}  // namespace
}  // namespace ipc
}  // namespace astraea
