#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/link.h"
#include "src/sim/packet_pool.h"

namespace astraea {
namespace {

// Terminal sink that records deliveries (copying the packet out and
// releasing the pooled slot, as a real receiver would).
class RecordingSink : public PacketSink {
 public:
  explicit RecordingSink(PacketPool* pool) : pool_(pool) {}
  void Accept(PacketRef ref) override {
    received.push_back(pool_->Get(ref));
    pool_->Release(ref);
  }
  std::vector<Packet> received;

 private:
  PacketPool* pool_;
};

class LinkTest : public ::testing::Test {
 protected:
  PacketRef MakePacket(uint64_t seq, uint32_t size = 1500) {
    const PacketRef ref = pool_.Acquire();
    Packet& pkt = pool_.Get(ref);
    pkt.flow_id = 0;
    pkt.seq = seq;
    pkt.size_bytes = size;
    pkt.sent_time = events_.now();
    pkt.route = &route_;
    pkt.hop = 0;
    return ref;
  }

  EventQueue events_;
  PacketPool pool_;
  RecordingSink sink_{&pool_};
  Route route_;
};

TEST_F(LinkTest, DeliversAfterServiceAndPropagation) {
  LinkConfig config;
  config.rate = Mbps(100);
  config.propagation_delay = Milliseconds(5);
  config.buffer_bytes = 100'000;
  Link link(&events_, config, Rng(1), &pool_);
  route_ = {&link, &sink_};

  link.Accept(MakePacket(0));
  events_.RunAll();
  ASSERT_EQ(sink_.received.size(), 1u);
  // 1500B at 100Mbps = 120us service + 5ms propagation.
  EXPECT_EQ(events_.now(), Microseconds(120) + Milliseconds(5));
}

TEST_F(LinkTest, ServiceRateMatchesConfiguredRate) {
  LinkConfig config;
  config.rate = Mbps(50);
  config.propagation_delay = 0;
  config.buffer_bytes = 100'000'000;
  Link link(&events_, config, Rng(1), &pool_);
  route_ = {&link, &sink_};

  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    link.Accept(MakePacket(i));
  }
  events_.RunAll();
  ASSERT_EQ(sink_.received.size(), static_cast<size_t>(n));
  const double measured_bps = n * 1500.0 * 8.0 / ToSeconds(events_.now());
  EXPECT_NEAR(measured_bps / Mbps(50), 1.0, 0.01);
}

TEST_F(LinkTest, PreservesFifoOrder) {
  LinkConfig config;
  config.rate = Mbps(10);
  config.buffer_bytes = 10'000'000;
  config.propagation_delay = Milliseconds(1);
  Link link(&events_, config, Rng(1), &pool_);
  route_ = {&link, &sink_};

  for (int i = 0; i < 50; ++i) {
    link.Accept(MakePacket(i));
  }
  events_.RunAll();
  ASSERT_EQ(sink_.received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(sink_.received[static_cast<size_t>(i)].seq, static_cast<uint64_t>(i));
  }
}

TEST_F(LinkTest, DropTailAtBufferLimit) {
  LinkConfig config;
  config.rate = Mbps(10);
  config.propagation_delay = 0;
  config.buffer_bytes = 3000;  // room for exactly 2 queued packets
  Link link(&events_, config, Rng(1), &pool_);
  route_ = {&link, &sink_};

  // One in service + two queued fit; the rest drop.
  for (int i = 0; i < 10; ++i) {
    link.Accept(MakePacket(i));
  }
  events_.RunAll();
  EXPECT_EQ(sink_.received.size(), 3u);
  EXPECT_EQ(link.dropped_bytes(), 7u * 1500u);
  // Conservation: accepted = delivered + dropped.
  EXPECT_EQ(link.accepted_bytes(), link.delivered_bytes() + link.dropped_bytes());
}

TEST_F(LinkTest, RandomLossDropsApproximatelyAtRate) {
  LinkConfig config;
  config.rate = Mbps(1000);
  config.propagation_delay = 0;
  config.buffer_bytes = 100'000'000;
  config.random_loss = 0.1;
  Link link(&events_, config, Rng(99), &pool_);
  route_ = {&link, &sink_};

  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    link.Accept(MakePacket(i));
  }
  events_.RunAll();
  const double loss_rate = 1.0 - static_cast<double>(sink_.received.size()) / n;
  EXPECT_NEAR(loss_rate, 0.1, 0.02);
  EXPECT_EQ(link.wire_lost_bytes() + sink_.received.size() * 1500u, link.delivered_bytes());
}

TEST_F(LinkTest, TraceDrivenRateFollowsTrace) {
  LinkConfig config;
  config.propagation_delay = 0;
  config.buffer_bytes = 100'000'000;
  config.trace = std::make_shared<RateTrace>(
      std::vector<std::pair<TimeNs, RateBps>>{{0, Mbps(10)}, {Seconds(1.0), Mbps(40)}});
  Link link(&events_, config, Rng(1), &pool_);
  route_ = {&link, &sink_};

  // Saturate for 2 seconds; expect ~(10 + 40)/2 = 25 Mbit total over 2s.
  for (int i = 0; i < 5000; ++i) {
    link.Accept(MakePacket(i));
  }
  events_.RunUntil(Seconds(2.0));
  const double delivered_bits = static_cast<double>(link.delivered_bytes()) * 8.0;
  EXPECT_NEAR(delivered_bits, 50e6, 2e6);
}

TEST_F(LinkTest, QueueByteAccountingIsConsistent) {
  LinkConfig config;
  config.rate = Mbps(1);
  config.propagation_delay = 0;
  config.buffer_bytes = 1'000'000;
  Link link(&events_, config, Rng(1), &pool_);
  route_ = {&link, &sink_};

  for (int i = 0; i < 10; ++i) {
    link.Accept(MakePacket(i));
  }
  // One is in service; nine are queued.
  EXPECT_EQ(link.queue_packets(), 9u);
  EXPECT_EQ(link.queue_bytes(), 9u * 1500u);
  events_.RunAll();
  EXPECT_EQ(link.queue_packets(), 0u);
  EXPECT_EQ(link.queue_bytes(), 0u);
}

// Property: for any (rate, packet count), a saturated link's long-run
// delivery rate equals its configured rate within 1%.
class LinkRateConformance : public ::testing::TestWithParam<double> {};

TEST_P(LinkRateConformance, DeliveryMatchesRate) {
  EventQueue events;
  PacketPool pool;
  RecordingSink sink(&pool);
  LinkConfig config;
  config.rate = Mbps(GetParam());
  config.propagation_delay = 0;
  config.buffer_bytes = 1'000'000'000;
  Link link(&events, config, Rng(1), &pool);
  Route route{&link, &sink};

  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const PacketRef ref = pool.Acquire();
    Packet& pkt = pool.Get(ref);
    pkt.seq = static_cast<uint64_t>(i);
    pkt.size_bytes = 1500;
    pkt.route = &route;
    pkt.hop = 0;
    link.Accept(ref);
  }
  events.RunAll();
  // Every packet came back to the pool: delivered ones via the sink, none
  // leaked in the link or queue.
  EXPECT_EQ(pool.live(), 0u);
  const double measured = n * 1500.0 * 8.0 / ToSeconds(events.now());
  EXPECT_NEAR(measured / Mbps(GetParam()), 1.0, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Rates, LinkRateConformance,
                         ::testing::Values(1.0, 10.0, 100.0, 1000.0, 10000.0));

}  // namespace
}  // namespace astraea
