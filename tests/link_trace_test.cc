// Parser-level tests for the Mahimahi link-trace format (src/sim/link_trace.h):
// hostile-input rejection, canonicalization round trips, file I/O, and the
// RateTrace conversion in both directions.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "src/sim/link_trace.h"
#include "src/util/serialization.h"

namespace astraea {
namespace {

LinkRateTrace Parse(const std::string& text) {
  return ParseLinkRateTrace(text.data(), text.size());
}

TEST(LinkTraceParseTest, ParsesSimple) {
  const LinkRateTrace t = Parse("0\n0\n3\n3\n3\n20\n");
  EXPECT_EQ(t.opportunities_ms, (std::vector<int64_t>{0, 0, 3, 3, 3, 20}));
}

TEST(LinkTraceParseTest, AcceptsCommentsBlankLinesAndCrlf) {
  const LinkRateTrace t = Parse("# capture\r\n\r\n5\r\n7\r\n# mid-file comment\n9\n\n");
  EXPECT_EQ(t.opportunities_ms, (std::vector<int64_t>{5, 7, 9}));
}

TEST(LinkTraceParseTest, AcceptsMissingTrailingNewline) {
  const LinkRateTrace t = Parse("1\n2\n3");
  EXPECT_EQ(t.opportunities_ms, (std::vector<int64_t>{1, 2, 3}));
}

TEST(LinkTraceParseTest, RejectsGarbage) {
  EXPECT_THROW(Parse("12monkeys\n"), SerializationError);
  EXPECT_THROW(Parse("1.5\n"), SerializationError);
  EXPECT_THROW(Parse("1 2\n"), SerializationError);
}

TEST(LinkTraceParseTest, RejectsNegative) {
  EXPECT_THROW(Parse("-3\n"), SerializationError);
}

TEST(LinkTraceParseTest, RejectsDecreasing) {
  EXPECT_THROW(Parse("5\n4\n"), SerializationError);
}

TEST(LinkTraceParseTest, AcceptsEqualTimestamps) {
  EXPECT_EQ(Parse("5\n5\n").opportunities_ms, (std::vector<int64_t>{5, 5}));
}

TEST(LinkTraceParseTest, RejectsTimestampAboveBound) {
  EXPECT_THROW(Parse(std::to_string(kMaxLinkTraceMs + 1) + "\n"), SerializationError);
  // Exactly the bound is fine.
  EXPECT_EQ(Parse(std::to_string(kMaxLinkTraceMs) + "\n").opportunities_ms.size(), 1u);
  // Overflow-scale values must be caught mid-accumulation, not wrapped.
  EXPECT_THROW(Parse("99999999999999999999999\n"), SerializationError);
}

TEST(LinkTraceParseTest, RejectsEmptyAndCommentOnly) {
  EXPECT_THROW(Parse(""), SerializationError);
  EXPECT_THROW(Parse("# nothing\n\n"), SerializationError);
}

TEST(LinkTraceParseTest, RejectsTooManyOpportunities) {
  std::string huge;
  huge.reserve((kMaxLinkTraceOpportunities + 1) * 2);
  for (size_t i = 0; i <= kMaxLinkTraceOpportunities; ++i) {
    huge += "0\n";
  }
  EXPECT_THROW(Parse(huge), SerializationError);
}

TEST(LinkTraceCanonicalTest, RoundTripIdentity) {
  const LinkRateTrace t = Parse("# noise\r\n0\r\n0\n17\n17\n86399999\n");
  const std::string canon = CanonicalLinkRateTrace(t);
  EXPECT_EQ(Parse(canon), t);
  // Canonicalization is a fixpoint.
  EXPECT_EQ(CanonicalLinkRateTrace(Parse(canon)), canon);
}

TEST(LinkTraceFileTest, SaveLoadRoundTrip) {
  const std::string path = "/tmp/astraea_link_trace_test.trace";
  LinkRateTrace t;
  t.opportunities_ms = {0, 1, 1, 5, 100};
  SaveLinkRateTraceFile(t, path);
  EXPECT_EQ(LoadLinkRateTraceFile(path), t);
  std::filesystem::remove(path);
}

TEST(LinkTraceFileTest, MissingFileThrows) {
  EXPECT_THROW(LoadLinkRateTraceFile("/nonexistent/foo.trace"), SerializationError);
}

TEST(LinkTraceFileTest, LoadErrorNamesTheFile) {
  const std::string path = "/tmp/astraea_link_trace_bad.trace";
  SaveLinkRateTraceFile(LinkRateTrace{{1}}, path);
  {
    std::ofstream out(path);
    out << "garbage\n";
  }
  try {
    LoadLinkRateTraceFile(path);
    FAIL() << "expected SerializationError";
  } catch (const SerializationError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
  std::filesystem::remove(path);
}

TEST(LinkTraceRateTest, BucketsOpportunitiesIntoSlots) {
  // 20 opportunities in slot [0,20)ms and none afterwards until ms 45.
  LinkRateTrace t;
  for (int i = 0; i < 20; ++i) {
    t.opportunities_ms.push_back(i);
  }
  t.opportunities_ms.push_back(45);
  const RateTrace r = ToRateTrace(t, 1500, Milliseconds(20));
  // Slot 0: 20 pkts / 20ms = 12 Mbps.
  EXPECT_NEAR(r.RateAt(Milliseconds(10)), Mbps(12), 1.0);
  // Slot 1 is empty: floored at 1 Kbps, never zero (zero-rate interval).
  EXPECT_DOUBLE_EQ(r.RateAt(Milliseconds(30)), Kbps(1.0));
}

TEST(LinkTraceRateTest, ExportReimportConservesCapacity) {
  // The 1 ms credit walk conserves the rate integral: a uniform
  // 1-packet-per-ms trace comes back with the same opportunity count (±1 for
  // the trailing fractional credit) inside the same horizon.
  LinkRateTrace t;
  for (int i = 0; i < 100; ++i) {
    t.opportunities_ms.push_back(i);
  }
  const RateTrace r = ToRateTrace(t, 1500, Milliseconds(20));
  const LinkRateTrace back = FromRateTrace(r, Milliseconds(100), 1500);
  EXPECT_NEAR(static_cast<double>(back.opportunities_ms.size()),
              static_cast<double>(t.opportunities_ms.size()), 1.0);
  EXPECT_GE(back.opportunities_ms.front(), 0);
  EXPECT_LT(back.opportunities_ms.back(), 100);
}

}  // namespace
}  // namespace astraea
