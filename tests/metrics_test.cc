#include "src/util/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace astraea {
namespace {

TEST(CounterTest, IncrementAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsMerge) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAddValue) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.Value(), 1.5);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
}

TEST(HistogramTest, TracksCountSumMinMaxMean) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
  h.Observe(1.0);
  h.Observe(3.0);
  h.Observe(8.0);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.Sum(), 12.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 8.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 4.0);
}

TEST(HistogramTest, QuantileIsBucketResolution) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Observe(static_cast<double>(i));
  }
  // Log2 buckets: the estimate is the bucket upper bound, so p50 of 1..1000
  // (true value 500) lands in (256, 512] -> 512, clipped to observed range.
  const double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 500.0 / 2.0);
  EXPECT_LE(p50, 500.0 * 2.0);
  const double p99 = h.Quantile(0.99);
  EXPECT_GE(p99, p50);
  EXPECT_LE(p99, 1000.0);  // clipped to the observed max
  // Quantile argument saturates outside [0, 1].
  EXPECT_LE(h.Quantile(2.0), 1000.0);
  EXPECT_GE(h.Quantile(-1.0), 0.0);
}

TEST(HistogramTest, HandlesZeroAndTinyValues) {
  Histogram h;
  h.Observe(0.0);
  h.Observe(1e-12);
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
}

TEST(MetricsRegistryTest, ReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("x");
  Counter& b = reg.GetCounter("x");
  EXPECT_EQ(&a, &b);
  a.Increment(7);
  EXPECT_EQ(reg.GetCounter("x").Value(), 7u);
  // Distinct namespaces per metric kind.
  reg.GetGauge("x").Set(1.0);
  EXPECT_EQ(reg.GetCounter("x").Value(), 7u);
}

TEST(MetricsRegistryTest, ToJsonRendersEveryMetric) {
  MetricsRegistry reg;
  reg.GetCounter("events.total").Increment(3);
  reg.GetGauge("replay.size").Set(128.0);
  reg.GetHistogram("batch.size").Observe(4.0);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"events.total\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":3"), std::string::npos);
  EXPECT_NE(json.find("\"replay.size\""), std::string::npos);
  EXPECT_NE(json.find("\"batch.size\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricsRegistryTest, ResetAllZeroesButKeepsRegistrations) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("c");
  Gauge& g = reg.GetGauge("g");
  Histogram& h = reg.GetHistogram("h");
  c.Increment(5);
  g.Set(9.0);
  h.Observe(2.0);
  reg.ResetAll();
  EXPECT_EQ(c.Value(), 0u);   // same references still valid
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  EXPECT_EQ(h.Count(), 0u);
}

TEST(MetricsRegistryTest, GlobalIsASingleton) {
  MetricsRegistry& a = MetricsRegistry::Global();
  MetricsRegistry& b = MetricsRegistry::Global();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace astraea
