#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "src/nn/mlp.h"

namespace astraea {
namespace {

TEST(MlpTest, ShapesAndDeterminism) {
  Rng rng(1);
  Mlp net({4, 8, 8, 2}, OutputActivation::kTanh, &rng);
  EXPECT_EQ(net.input_size(), 4);
  EXPECT_EQ(net.output_size(), 2);
  const std::vector<float> x = {0.1f, -0.2f, 0.3f, 0.4f};
  const auto y1 = net.Infer(x);
  const auto y2 = net.Infer(x);
  ASSERT_EQ(y1.size(), 2u);
  EXPECT_EQ(y1, y2);
  for (float v : y1) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(MlpTest, ForwardMatchesInfer) {
  Rng rng(2);
  Mlp net({3, 16, 1}, OutputActivation::kIdentity, &rng);
  const std::vector<float> x = {1.0f, 2.0f, 3.0f};
  EXPECT_EQ(net.Forward(x), net.Infer(x));
}

TEST(MlpTest, InferBatchMatchesPerSample) {
  Rng rng(3);
  Mlp net({5, 32, 16, 2}, OutputActivation::kTanh, &rng);
  const size_t batch = 7;
  std::vector<float> inputs(batch * 5);
  Rng data_rng(9);
  for (auto& v : inputs) {
    v = static_cast<float>(data_rng.Uniform(-1.0, 1.0));
  }
  const auto batched = net.InferBatch(inputs, batch);
  ASSERT_EQ(batched.size(), batch * 2);
  for (size_t i = 0; i < batch; ++i) {
    const auto single =
        net.Infer(std::span<const float>(inputs.data() + i * 5, 5));
    EXPECT_FLOAT_EQ(batched[i * 2 + 0], single[0]);
    EXPECT_FLOAT_EQ(batched[i * 2 + 1], single[1]);
  }
}

TEST(MlpTest, ForwardBatchMatchesPerRowInferExactly) {
  Rng rng(31);
  Mlp net({6, 24, 12, 3}, OutputActivation::kTanh, &rng);
  const size_t batch = 17;
  std::vector<float> inputs(batch * 6);
  Rng data_rng(32);
  for (auto& v : inputs) {
    v = static_cast<float>(data_rng.Uniform(-2.0, 2.0));
  }
  const auto batched = net.ForwardBatch(inputs, batch);
  ASSERT_EQ(batched.size(), batch * 3);
  for (size_t r = 0; r < batch; ++r) {
    const auto single = net.Infer(std::span<const float>(inputs.data() + r * 6, 6));
    for (size_t o = 0; o < 3; ++o) {
      EXPECT_EQ(batched[r * 3 + o], single[o]) << "row " << r << " out " << o;
    }
  }
}

TEST(MlpTest, BackwardBatchMatchesPerSampleBackwardExactly) {
  const std::vector<int> dims = {5, 16, 8, 2};
  Rng rng_a(33);
  Mlp batched_net(dims, OutputActivation::kTanh, &rng_a);
  Rng rng_b(33);
  Mlp reference_net(dims, OutputActivation::kTanh, &rng_b);

  const size_t batch = 9;
  std::vector<float> inputs(batch * 5);
  std::vector<float> out_grads(batch * 2);
  Rng data_rng(34);
  for (auto& v : inputs) {
    v = static_cast<float>(data_rng.Uniform(-1.5, 1.5));
  }
  for (auto& v : out_grads) {
    v = static_cast<float>(data_rng.Uniform(-1.0, 1.0));
  }

  batched_net.ZeroGrad();
  batched_net.ForwardBatch(inputs, batch);
  const auto batched_dx = batched_net.BackwardBatch(out_grads, batch);

  reference_net.ZeroGrad();
  std::vector<float> reference_dx;
  for (size_t r = 0; r < batch; ++r) {
    reference_net.Forward(std::span<const float>(inputs.data() + r * 5, 5));
    const auto dx =
        reference_net.Backward(std::span<const float>(out_grads.data() + r * 2, 2));
    reference_dx.insert(reference_dx.end(), dx.begin(), dx.end());
  }

  auto bg = batched_net.grads();
  auto rg = reference_net.grads();
  ASSERT_EQ(bg.size(), rg.size());
  for (size_t i = 0; i < bg.size(); ++i) {
    EXPECT_EQ(bg[i], rg[i]) << "grad index " << i;
  }
  ASSERT_EQ(batched_dx.size(), reference_dx.size());
  for (size_t i = 0; i < batched_dx.size(); ++i) {
    EXPECT_EQ(batched_dx[i], reference_dx[i]) << "input grad index " << i;
  }
}

TEST(MlpTest, BatchedScratchReusesAcrossVaryingBatchSizes) {
  Rng rng(35);
  Mlp net({4, 10, 2}, OutputActivation::kIdentity, &rng);
  Rng data_rng(36);
  std::vector<float> big(12 * 4);
  for (auto& v : big) {
    v = static_cast<float>(data_rng.Uniform(-1.0, 1.0));
  }
  // Large batch, then a smaller one reusing the same scratch, then repeat the
  // large one: answers must be stable call-to-call.
  const std::vector<float> first(net.InferBatch(big, 12));
  const std::vector<float> small(net.InferBatch(std::span<const float>(big.data(), 3 * 4), 3));
  const std::vector<float> again(net.InferBatch(big, 12));
  EXPECT_EQ(first, again);
  for (size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small[i], first[i]);
  }
}

// Finite-difference gradient check: both parameter grads and input grads.
TEST(MlpTest, GradientsMatchFiniteDifferences) {
  Rng rng(4);
  Mlp net({3, 6, 4, 1}, OutputActivation::kIdentity, &rng);
  const std::vector<float> x = {0.5f, -0.3f, 0.8f};

  // Loss = y (identity on the scalar output), so dL/dy = 1.
  net.ZeroGrad();
  net.Forward(x);
  const float dy[1] = {1.0f};
  const std::vector<float> dx = net.Backward(dy);

  const float eps = 1e-3f;
  // Check a spread of parameter gradients.
  auto params = net.params();
  auto grads = net.grads();
  for (size_t i = 0; i < params.size(); i += std::max<size_t>(params.size() / 17, 1)) {
    const float original = params[i];
    params[i] = original + eps;
    const float up = net.Infer(x)[0];
    params[i] = original - eps;
    const float down = net.Infer(x)[0];
    params[i] = original;
    const float fd = (up - down) / (2 * eps);
    EXPECT_NEAR(grads[i], fd, 5e-3) << "param index " << i;
  }

  // Input gradients.
  for (size_t i = 0; i < x.size(); ++i) {
    std::vector<float> xp = x;
    xp[i] += eps;
    const float up = net.Infer(xp)[0];
    xp[i] = x[i] - eps;
    const float down = net.Infer(xp)[0];
    const float fd = (up - down) / (2 * eps);
    EXPECT_NEAR(dx[i], fd, 5e-3) << "input index " << i;
  }
}

TEST(MlpTest, TanhOutputGradientCheck) {
  Rng rng(5);
  Mlp net({2, 8, 1}, OutputActivation::kTanh, &rng);
  const std::vector<float> x = {0.7f, -0.4f};
  net.ZeroGrad();
  net.Forward(x);
  const float dy[1] = {1.0f};
  const std::vector<float> dx = net.Backward(dy);

  const float eps = 1e-3f;
  std::vector<float> xp = x;
  xp[0] += eps;
  const float up = net.Infer(xp)[0];
  xp[0] = x[0] - eps;
  const float down = net.Infer(xp)[0];
  EXPECT_NEAR(dx[0], (up - down) / (2 * eps), 5e-3);
}

TEST(MlpTest, GradientDescentFitsXor) {
  // A classic sanity check that the full train loop learns a nonlinear map.
  Rng rng(6);
  Mlp net({2, 16, 16, 1}, OutputActivation::kTanh, &rng);
  Adam opt(net.parameter_count(), 0.01f);
  const float inputs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const float targets[4] = {-0.8f, 0.8f, 0.8f, -0.8f};

  for (int epoch = 0; epoch < 800; ++epoch) {
    net.ZeroGrad();
    for (int i = 0; i < 4; ++i) {
      const float y = net.Forward(std::span<const float>(inputs[i], 2))[0];
      const float dy[1] = {2.0f * (y - targets[i])};
      net.Backward(dy);
    }
    opt.Step(net.params(), net.grads(), 4.0f);
  }
  for (int i = 0; i < 4; ++i) {
    const float y = net.Infer(std::span<const float>(inputs[i], 2))[0];
    EXPECT_NEAR(y, targets[i], 0.25f) << "pattern " << i;
  }
}

TEST(MlpTest, PolyakBlendsParameters) {
  Rng rng(7);
  Mlp a({2, 4, 1}, OutputActivation::kIdentity, &rng);
  Mlp b({2, 4, 1}, OutputActivation::kIdentity, &rng);
  const float a0 = a.params()[0];
  const float b0 = b.params()[0];
  b.PolyakUpdateFrom(a, 0.25f);
  EXPECT_FLOAT_EQ(b.params()[0], 0.25f * a0 + 0.75f * b0);
}

TEST(MlpTest, SaveLoadRoundTrip) {
  const std::string path = "/tmp/astraea_mlp_test.ckpt";
  Rng rng(8);
  Mlp net({4, 8, 2}, OutputActivation::kTanh, &rng);
  const std::vector<float> x = {0.1f, 0.2f, 0.3f, 0.4f};
  const auto before = net.Infer(x);
  {
    BinaryWriter w(path);
    net.Save(&w);
  }
  BinaryReader r(path);
  Mlp loaded = Mlp::Load(&r);
  EXPECT_EQ(loaded.dims(), net.dims());
  EXPECT_EQ(loaded.Infer(x), before);
  std::filesystem::remove(path);
}

TEST(MlpTest, LoadRejectsCorruptMagic) {
  const std::string path = "/tmp/astraea_mlp_corrupt.ckpt";
  {
    BinaryWriter w(path);
    w.WriteU32(0x12345678);
    w.WriteU32(1);
  }
  BinaryReader r(path);
  EXPECT_THROW(Mlp::Load(&r), SerializationError);
  std::filesystem::remove(path);
}

TEST(AdamTest, StepsTowardMinimum) {
  // Minimize f(p) = (p - 3)^2 from p = 0.
  std::vector<float> p = {0.0f};
  Adam opt(1, 0.1f);
  for (int i = 0; i < 500; ++i) {
    const std::vector<float> g = {2.0f * (p[0] - 3.0f)};
    opt.Step(p, g);
  }
  EXPECT_NEAR(p[0], 3.0f, 0.05f);
}

}  // namespace
}  // namespace astraea
