#include <gtest/gtest.h>

#include "src/core/learner.h"
#include "src/core/multi_flow_env.h"

namespace astraea {
namespace {

Td3Config EnvTd3Config(const AstraeaHyperparameters& hp) {
  Td3Config config;
  config.local_state_dim = LocalStateDim(hp);
  config.global_state_dim = kGlobalFeatures;
  config.action_dim = 1;
  config.hidden = {16, 16};
  config.batch_size = 32;
  return config;
}

TEST(SampleEpisodeTest, StaysWithinTableThreeRanges) {
  TrainingEnvRanges ranges;
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const EnvEpisodeConfig config = SampleEpisode(ranges, &rng);
    EXPECT_GE(config.bandwidth, ranges.bandwidth_lo);
    EXPECT_LE(config.bandwidth, ranges.bandwidth_hi);
    EXPECT_GE(config.base_rtt, ranges.rtt_lo);
    EXPECT_LE(config.base_rtt, ranges.rtt_hi);
    EXPECT_GE(config.buffer_bdp, ranges.buffer_bdp_lo);
    EXPECT_LE(config.buffer_bdp, ranges.buffer_bdp_hi);
    EXPECT_GE(static_cast<int>(config.flows.size()), ranges.flows_lo);
    EXPECT_LE(static_cast<int>(config.flows.size()), ranges.flows_hi);
    for (const FlowSchedule& f : config.flows) {
      EXPECT_GE(f.start, 0);
    }
  }
}

TEST(MultiFlowEnvTest, CollectsTransitionsWithCorrectShapes) {
  AstraeaHyperparameters hp;
  Rng rng(2);
  Td3Trainer trainer(EnvTd3Config(hp), &rng);
  ReplayBuffer buffer(10'000);

  EnvEpisodeConfig config;
  config.bandwidth = Mbps(60);
  config.base_rtt = Milliseconds(30);
  config.buffer_bdp = 1.0;
  config.episode_length = Seconds(10.0);
  config.seed = 3;
  config.flows.push_back({0, -1, 0});
  config.flows.push_back({Seconds(2.0), -1, 0});

  MultiFlowEnv env(config, hp, &trainer, &buffer, 0.1, &rng);
  int update_calls = 0;
  const EpisodeStats stats = env.Run([&update_calls] { ++update_calls; });

  EXPECT_EQ(update_calls, 2);  // 10s / 5s interval
  EXPECT_GT(stats.decisions, 50);
  ASSERT_GT(buffer.size(), 50u);

  const Transition& t = buffer.at(0);
  EXPECT_EQ(t.local_state.size(), static_cast<size_t>(LocalStateDim(hp)));
  EXPECT_EQ(t.global_state.size(), static_cast<size_t>(kGlobalFeatures));
  EXPECT_EQ(t.action.size(), 1u);
  EXPECT_GE(t.action[0], -1.0f);
  EXPECT_LE(t.action[0], 1.0f);
  EXPECT_GE(t.reward, -0.1f);
  EXPECT_LE(t.reward, 0.1f);
}

TEST(MultiFlowEnvTest, RewardReflectsLinkUtilization) {
  // A healthy multi-flow episode should produce positive mean reward and a
  // high mean throughput term once flows ramp up.
  AstraeaHyperparameters hp;
  Rng rng(4);
  Td3Trainer trainer(EnvTd3Config(hp), &rng);
  ReplayBuffer buffer(10'000);

  EnvEpisodeConfig config;
  config.bandwidth = Mbps(80);
  config.base_rtt = Milliseconds(20);
  config.buffer_bdp = 2.0;
  config.episode_length = Seconds(15.0);
  config.seed = 5;
  config.flows.push_back({0, -1, 0});

  // Freeze exploration so the distilled-free actor still produces actions in
  // range; utilization comes from slow start + random actor behaviour.
  MultiFlowEnv env(config, hp, &trainer, &buffer, 0.0, &rng);
  const EpisodeStats stats = env.Run({});
  EXPECT_GT(stats.mean_r_thr, 0.2);
}

TEST(LearnerTest, MultipleEnvInstancesFillBufferFaster) {
  auto buffer_fill = [](int instances) {
    LearnerConfig config;
    config.episode_length = Seconds(6.0);
    config.env_instances = instances;
    config.seed = 9;
    Learner learner(config);
    learner.Train(1, {});
    return learner.buffer().size();
  };
  const size_t one = buffer_fill(1);
  const size_t four = buffer_fill(4);
  EXPECT_GT(four, one * 2);  // ~4x the experience per episode
}

TEST(LearnerTest, TrainsWithoutCrashingAndFillsBuffer) {
  LearnerConfig config;
  config.episode_length = Seconds(8.0);
  config.seed = 6;
  Learner learner(config);
  int episodes_seen = 0;
  learner.Train(2, [&](const EpisodeDiagnostics& d) {
    ++episodes_seen;
    EXPECT_EQ(d.episode, episodes_seen);
  });
  EXPECT_EQ(episodes_seen, 2);
  EXPECT_GT(learner.buffer().size(), 100u);
}

}  // namespace
}  // namespace astraea
