// Real-packet UDP data plane (src/net): wire-format round-trips and
// hostile-byte rejection, loopback end-to-end transfers over real kernel
// sockets, delayed-ACK aggregation, link-emulator shaping, and the
// kill-the-receiver RTO path (sender must time out and the Astraea
// controller must re-enter slow start).
//
// Timing-sensitive assertions are deliberately loose: these run on shared CI
// runners. Correctness (byte conservation, zero corruption, state-machine
// transitions) is asserted exactly; rates only within generous bands.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <thread>

#include "src/core/astraea_controller.h"
#include "src/core/policy.h"
#include "src/net/link_emulator.h"
#include "src/net/loopback.h"
#include "src/net/udp_receiver.h"
#include "src/net/udp_sender.h"
#include "src/net/wire.h"

namespace astraea {
namespace net {
namespace {

// ---------------------------------------------------------------- wire format

TEST(WireTest, DataFrameRoundTrip) {
  DataFrame frame;
  frame.flow_id = 7;
  frame.seq = 123456789;
  frame.send_time = Seconds(3.5);
  frame.sent_bytes_total = 999999;
  frame.sent_frames_total = 42;
  frame.payload_len = 512;

  uint8_t buf[kMaxFrameBytes];
  const size_t len = SerializeData(frame, buf, sizeof(buf));
  ASSERT_EQ(len, kDataHeaderBytes + 512);

  ParsedFrame parsed;
  ASSERT_EQ(ParseFrame(buf, len, &parsed), ParseStatus::kOk);
  ASSERT_EQ(parsed.type, FrameType::kData);
  EXPECT_EQ(parsed.data.flow_id, 7u);
  EXPECT_EQ(parsed.data.seq, 123456789u);
  EXPECT_EQ(parsed.data.send_time, Seconds(3.5));
  EXPECT_EQ(parsed.data.sent_bytes_total, 999999u);
  EXPECT_EQ(parsed.data.sent_frames_total, 42u);
  EXPECT_EQ(parsed.payload_len, 512u);
  EXPECT_TRUE(VerifyPayloadPattern(7, 123456789, parsed.payload, parsed.payload_len));
  // The pattern is seq-specific: the same bytes must not verify as another
  // frame (catches misdelivered/reordered payload slots).
  EXPECT_FALSE(VerifyPayloadPattern(7, 123456790, parsed.payload, parsed.payload_len));
}

TEST(WireTest, AckFrameRoundTrip) {
  AckFrame ack;
  ack.flow_id = 3;
  ack.cum_ack = 1000;
  ack.ack_seq = 1010;
  ack.echo_send_time = Milliseconds(250);
  ack.ack_delay = Milliseconds(2);
  ack.sack_bitmap = 0xDEADBEEFCAFEF00DULL;
  ack.acked_count = 5;
  ack.received_bytes_total = 123456;
  ack.received_frames_total = 1005;
  ack.corrupt_frames_total = 2;

  uint8_t buf[kAckFrameBytes];
  ASSERT_EQ(SerializeAck(ack, buf, sizeof(buf)), kAckFrameBytes);
  ParsedFrame parsed;
  ASSERT_EQ(ParseFrame(buf, kAckFrameBytes, &parsed), ParseStatus::kOk);
  ASSERT_EQ(parsed.type, FrameType::kAck);
  EXPECT_EQ(parsed.ack.cum_ack, 1000u);
  EXPECT_EQ(parsed.ack.ack_seq, 1010u);
  EXPECT_EQ(parsed.ack.echo_send_time, Milliseconds(250));
  EXPECT_EQ(parsed.ack.ack_delay, Milliseconds(2));
  EXPECT_EQ(parsed.ack.sack_bitmap, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(parsed.ack.acked_count, 5u);
  EXPECT_EQ(parsed.ack.received_bytes_total, 123456u);
  EXPECT_EQ(parsed.ack.received_frames_total, 1005u);
  EXPECT_EQ(parsed.ack.corrupt_frames_total, 2u);
}

TEST(WireTest, FinRoundTrip) {
  FinFrame fin;
  fin.flow_id = 9;
  fin.final_seq = 5555;
  uint8_t buf[kFinFrameBytes];
  ASSERT_EQ(SerializeFin(fin, /*is_ack=*/false, buf, sizeof(buf)), kFinFrameBytes);
  ParsedFrame parsed;
  ASSERT_EQ(ParseFrame(buf, kFinFrameBytes, &parsed), ParseStatus::kOk);
  EXPECT_EQ(parsed.type, FrameType::kFin);
  EXPECT_EQ(parsed.fin.final_seq, 5555u);

  ASSERT_EQ(SerializeFin(fin, /*is_ack=*/true, buf, sizeof(buf)), kFinFrameBytes);
  ASSERT_EQ(ParseFrame(buf, kFinFrameBytes, &parsed), ParseStatus::kOk);
  EXPECT_EQ(parsed.type, FrameType::kFinAck);
}

TEST(WireTest, RejectsUndersizedBuffers) {
  DataFrame frame;
  frame.payload_len = 1000;
  uint8_t small[64];
  EXPECT_EQ(SerializeData(frame, small, sizeof(small)), 0u);
  AckFrame ack;
  EXPECT_EQ(SerializeAck(ack, small, 8), 0u);
}

TEST(WireTest, RejectsHostileBytes) {
  ParsedFrame parsed;
  // Too short for a header.
  uint8_t tiny[4] = {1, 2, 3, 4};
  EXPECT_EQ(ParseFrame(tiny, sizeof(tiny), &parsed), ParseStatus::kTruncated);

  // Valid frame, then single-bit flips must fail CRC (or an earlier check);
  // nothing may parse as OK.
  AckFrame ack;
  ack.flow_id = 1;
  ack.ack_seq = 77;
  uint8_t buf[kAckFrameBytes];
  ASSERT_EQ(SerializeAck(ack, buf, sizeof(buf)), kAckFrameBytes);
  for (size_t byte = 0; byte < kAckFrameBytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      uint8_t copy[kAckFrameBytes];
      std::memcpy(copy, buf, sizeof(copy));
      copy[byte] ^= static_cast<uint8_t>(1 << bit);
      EXPECT_NE(ParseFrame(copy, sizeof(copy), &parsed), ParseStatus::kOk)
          << "bit flip at byte " << byte << " bit " << bit << " parsed OK";
    }
  }

  // Truncations of a valid frame must never parse.
  for (size_t len = 0; len < kAckFrameBytes; ++len) {
    EXPECT_NE(ParseFrame(buf, len, &parsed), ParseStatus::kOk) << "truncated to " << len;
  }

  // Trailing garbage is rejected: one frame per datagram.
  uint8_t padded[kAckFrameBytes + 3];
  std::memcpy(padded, buf, kAckFrameBytes);
  padded[kAckFrameBytes] = 0;
  EXPECT_EQ(ParseFrame(padded, sizeof(padded), &parsed), ParseStatus::kBadLength);
}

// ------------------------------------------------------------- loopback e2e

std::function<std::unique_ptr<CongestionController>()> AstraeaCc() {
  auto policy = std::make_shared<DistilledPolicy>();
  return [policy] {
    AstraeaHyperparameters hp;
    hp.skip_drain_on_fresh_floor = true;
    return std::make_unique<AstraeaController>(policy, hp);
  };
}

TEST(NetLoopbackTest, TransfersBytesWithZeroCorruption) {
  LoopbackConfig config;
  config.sender.total_bytes = 4 << 20;
  config.sender.max_runtime = Seconds(30.0);
  config.make_cc = AstraeaCc();
  const LoopbackResult result = RunLoopbackTransfer(config);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.sender.completed);
  EXPECT_TRUE(result.sender.fin_acked);
  EXPECT_EQ(result.receiver.corrupt_frames, 0u);
  EXPECT_GE(result.receiver.received_bytes, 4u << 20);
  // Wire-byte conservation, as in the simulator.
  EXPECT_EQ(result.sender.bytes_sent,
            result.sender.bytes_acked + result.sender.bytes_lost);
  EXPECT_GT(result.sender.goodput_bps(), 0.0);
  EXPECT_GT(result.sender.mtp_ticks, 0u);
}

TEST(NetLoopbackTest, DelayedAckAggregationCoversAllFrames) {
  LoopbackConfig config;
  config.sender.total_bytes = 1 << 20;
  config.sender.max_runtime = Seconds(30.0);
  config.receiver.ack_every = 4;
  config.make_cc = AstraeaCc();
  const LoopbackResult result = RunLoopbackTransfer(config);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.sender.completed);
  // Aggregation really happened: far fewer ACKs than data frames, yet every
  // frame was individually accounted (acked + lost == sent).
  EXPECT_LT(result.receiver.acks_sent, result.receiver.received_frames);
  EXPECT_EQ(result.sender.frames_acked, result.receiver.received_frames);
  EXPECT_EQ(result.receiver.corrupt_frames, 0u);
}

TEST(NetLoopbackTest, EmulatorShapesRttAndRate) {
  LoopbackConfig config;
  config.sender.total_bytes = 1 << 20;
  config.sender.max_runtime = Seconds(30.0);
  config.shaped = true;
  config.emulator.rate = Mbps(40);
  config.emulator.one_way_delay = Milliseconds(10);  // 20ms base RTT
  config.make_cc = AstraeaCc();
  const LoopbackResult result = RunLoopbackTransfer(config);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.sender.completed);
  EXPECT_EQ(result.receiver.corrupt_frames, 0u);
  // Propagation: no RTT sample below the configured base RTT.
  EXPECT_GE(result.sender.rtt_min_ms, 19.0);
  // Rate clamp: receiver goodput cannot beat the bottleneck (+25% slack for
  // measurement-window edge effects on a short transfer).
  EXPECT_LE(result.receiver.goodput_bps(), 40e6 * 1.25);
}

TEST(NetLoopbackTest, RandomLossIsChargedNotCorrupt) {
  LoopbackConfig config;
  config.sender.total_bytes = 2 << 20;
  config.sender.max_runtime = Seconds(30.0);
  config.shaped = true;
  config.emulator.random_loss = 0.02;
  config.emulator.seed = 7;
  config.make_cc = AstraeaCc();
  const LoopbackResult result = RunLoopbackTransfer(config);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.sender.completed);
  EXPECT_EQ(result.receiver.corrupt_frames, 0u);
  EXPECT_GT(result.emulator.dropped_random, 0u);
  // Every emulator drop is charged to the sender as loss, byte for byte
  // (gap/SACK detection plus RTO tail write-off).
  EXPECT_EQ(result.sender.bytes_sent,
            result.sender.bytes_acked + result.sender.bytes_lost);
  EXPECT_GE(result.sender.bytes_lost,
            result.emulator.dropped_random * result.sender.bytes_sent /
                (result.sender.frames_sent == 0 ? 1 : result.sender.frames_sent));
}

// ---------------------------------------------------- kill-the-receiver RTO

TEST(NetLoopbackTest, DeadReceiverTriggersRtoAndSlowStartReentry) {
  UdpReceiverConfig receiver_config;
  UdpReceiver receiver(receiver_config);
  ASSERT_TRUE(receiver.Bind());

  UdpSenderConfig sender_config;
  sender_config.host = "127.0.0.1";
  sender_config.port = receiver.port();
  sender_config.total_bytes = 256 << 20;  // far more than can finish
  sender_config.max_runtime = Seconds(4.0);

  AstraeaHyperparameters hp;
  hp.skip_drain_on_fresh_floor = true;
  auto cc = std::make_unique<AstraeaController>(std::make_shared<DistilledPolicy>(), hp);
  AstraeaController* astraea = cc.get();
  UdpSender sender(std::move(cc), sender_config);

  // Let the transfer run briefly, then kill the receiver mid-flight.
  std::thread receiver_thread([&receiver] { receiver.Run(); });
  std::thread killer([&receiver] {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    receiver.RequestStop();
  });
  sender.Run();
  killer.join();
  receiver_thread.join();

  const UdpSenderReport& report = sender.report();
  // The flow made progress, then the receiver died: the sender must have
  // fired at least one RTO and written the tail off.
  EXPECT_GT(report.bytes_acked, 0u);
  EXPECT_GE(report.rto_fires, 1u);
  EXPECT_GT(report.bytes_lost, 0u);
  EXPECT_FALSE(report.completed);
  // Controller contract: an RTO is a timeout LossEvent, and Astraea re-enters
  // slow start from it (paper §3.3 — same behavior the sim tests pin).
  EXPECT_TRUE(astraea->in_slow_start());
  // With nobody acking, MTP reports went stalled and carried the growing
  // silence bound (satellite fix shared through FlowMeter).
  EXPECT_EQ(sender.meter().interval_acked_packets(), 0u);
}

}  // namespace
}  // namespace net
}  // namespace astraea
