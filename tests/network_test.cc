#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/cc/cubic.h"
#include "src/cc/vegas.h"
#include "src/sim/invariants.h"
#include "src/sim/network.h"

namespace astraea {
namespace {

FlowSpec CubicFlow(TimeNs start = 0, TimeNs duration = -1) {
  FlowSpec spec;
  spec.scheme = "cubic";
  spec.make_cc = [] { return std::make_unique<Cubic>(); };
  spec.start = start;
  spec.duration = duration;
  return spec;
}

TEST(NetworkTest, FlowScheduleStartsAndStops) {
  Network net(1);
  LinkConfig link;
  link.rate = Mbps(50);
  link.propagation_delay = Milliseconds(10);
  link.buffer_bytes = 125'000;
  net.AddLink(link);
  net.AddFlow(CubicFlow(Seconds(1.0), Seconds(2.0)));

  net.Run(Milliseconds(500));
  EXPECT_TRUE(net.ActiveFlowIds().empty());
  net.Run(Seconds(2.0));
  EXPECT_EQ(net.ActiveFlowIds(), std::vector<int>{0});
  net.Run(Seconds(4.0));
  EXPECT_TRUE(net.ActiveFlowIds().empty());
  EXPECT_EQ(net.flow_stats(0).started_at, Seconds(1.0));
  EXPECT_EQ(net.flow_stats(0).stopped_at, Seconds(3.0));
}

TEST(NetworkTest, BaseRttIncludesExtraDelay) {
  Network net(1);
  LinkConfig link;
  link.propagation_delay = Milliseconds(20);
  net.AddLink(link);
  FlowSpec spec = CubicFlow();
  spec.extra_one_way_delay = Milliseconds(15);
  net.AddFlow(spec);
  EXPECT_EQ(net.BaseRtt(0), Milliseconds(55));  // 2*20 + 15
}

TEST(NetworkTest, TwoCubicFlowsShareTheLink) {
  Network net(1);
  LinkConfig link;
  link.rate = Mbps(100);
  link.propagation_delay = Milliseconds(15);
  link.buffer_bytes = 375'000;
  net.AddLink(link);
  net.AddFlow(CubicFlow());
  net.AddFlow(CubicFlow());
  net.Run(Seconds(30.0));

  const double thr0 = net.flow_stats(0).throughput_mbps.MeanOver(Seconds(10.0), Seconds(30.0));
  const double thr1 = net.flow_stats(1).throughput_mbps.MeanOver(Seconds(10.0), Seconds(30.0));
  EXPECT_NEAR(thr0 + thr1, 100.0, 5.0);     // full utilization
  EXPECT_NEAR(thr0, thr1, 30.0);            // AIMD rough fairness
}

TEST(NetworkTest, MultiBottleneckRoutesThroughBothLinks) {
  // Flow A: link0 only (100 Mbps). Flow B: link0 then link1 (20 Mbps).
  Network net(1);
  LinkConfig link0;
  link0.rate = Mbps(100);
  link0.propagation_delay = Milliseconds(10);
  link0.buffer_bytes = 250'000;
  net.AddLink(link0);
  LinkConfig link1;
  link1.rate = Mbps(20);
  link1.propagation_delay = Milliseconds(5);
  link1.buffer_bytes = 75'000;
  net.AddLink(link1);

  FlowSpec a = CubicFlow();
  a.link_path = {0};
  net.AddFlow(a);
  FlowSpec b = CubicFlow();
  b.link_path = {0, 1};
  net.AddFlow(b);
  EXPECT_EQ(net.BaseRtt(0), Milliseconds(20));
  EXPECT_EQ(net.BaseRtt(1), Milliseconds(30));

  net.Run(Seconds(30.0));
  const double thr_a = net.flow_stats(0).throughput_mbps.MeanOver(Seconds(10.0), Seconds(30.0));
  const double thr_b = net.flow_stats(1).throughput_mbps.MeanOver(Seconds(10.0), Seconds(30.0));
  // B is capped by link1; A gets the rest of link0.
  EXPECT_LE(thr_b, 21.0);
  // B pays double jeopardy (loss at both hops + link0's queueing delay), so
  // it lands well below link1's capacity; the point here is routing, so we
  // only require it to move real traffic through both links.
  EXPECT_GT(thr_b, 3.0);
  EXPECT_GT(thr_a, 70.0);
}

TEST(NetworkTest, ThreeHopDelayComposesAndMinRateLinkIsBottleneck) {
  // Whole test runs under the invariant checker in hard-fail mode: any
  // conservation/causality/FIFO slip on the multi-hop path throws.
  invariants::ScopedMode fatal(invariants::Mode::kFatal);

  // Three hops with distinct rates and propagation delays; hop 1 has the
  // minimum rate and must be the one (and only) queue that builds.
  Network net(11);
  const double rates_mbps[] = {60.0, 20.0, 40.0};
  const TimeNs props[] = {Milliseconds(5), Milliseconds(10), Milliseconds(15)};
  for (int i = 0; i < 3; ++i) {
    LinkConfig link;
    link.name = "hop" + std::to_string(i);
    link.rate = Mbps(rates_mbps[i]);
    link.propagation_delay = props[i];
    link.buffer_bytes = BdpBytes(link.rate, Milliseconds(60));
    net.AddLink(link);
  }
  FlowSpec spec = CubicFlow();
  spec.link_path = {0, 1, 2};
  net.AddFlow(spec);
  net.EnableLinkSampling(Milliseconds(50));

  // Base RTT composes the per-hop propagation delays: 2 * (5 + 10 + 15).
  EXPECT_EQ(net.BaseRtt(0), Milliseconds(60));

  const TimeNs until = Seconds(20.0);
  net.Run(until);

  // The min-rate hop bounds throughput; the flow saturates it.
  const double thr = net.flow_stats(0).throughput_mbps.MeanOver(Seconds(5.0), until);
  EXPECT_GT(thr, 15.0);
  EXPECT_LE(thr, 20.0 * 1.05);

  // Queueing concentrates at the bottleneck: hops 0 and 2 are faster than
  // their arrival rate, so their mean standing queue is a packet or two at
  // most, while hop 1 holds the cubic sawtooth.
  double mean_queue_pkts[3];
  for (int i = 0; i < 3; ++i) {
    mean_queue_pkts[i] = net.link_trace(i).queue_packets.MeanOver(Seconds(5.0), until);
  }
  EXPECT_GT(mean_queue_pkts[1], 5.0);
  EXPECT_LT(mean_queue_pkts[0], 2.0);
  EXPECT_LT(mean_queue_pkts[2], 2.0);
  EXPECT_GT(mean_queue_pkts[1], 5.0 * std::max(mean_queue_pkts[0], mean_queue_pkts[2]));

  // End-to-end delay composes propagation plus the per-hop queueing delays:
  // measured RTT above base must be explained by the observed queues (each
  // hop contributes mean_queue_bytes / rate).
  double queueing_ms = 0.0;
  for (int i = 0; i < 3; ++i) {
    queueing_ms += mean_queue_pkts[i] * 1500.0 * 8.0 / (rates_mbps[i] * 1e6) * 1e3;
  }
  const double rtt_ms = net.flow_stats(0).rtt_ms.MeanOver(Seconds(5.0), until);
  EXPECT_NEAR(rtt_ms - 60.0, queueing_ms, std::max(5.0, 0.5 * queueing_ms));
}

TEST(NetworkTest, LinkSamplingRecordsTraces) {
  Network net(1);
  LinkConfig link;
  link.rate = Mbps(50);
  link.propagation_delay = Milliseconds(10);
  link.buffer_bytes = 125'000;
  net.AddLink(link);
  net.AddFlow(CubicFlow());
  net.EnableLinkSampling(Milliseconds(100));
  net.Run(Seconds(5.0));

  const LinkTrace& trace = net.link_trace(0);
  EXPECT_GT(trace.delivered_mbps.points().size(), 40u);
  EXPECT_NEAR(trace.delivered_mbps.MeanOver(Seconds(1.0), Seconds(5.0)), 50.0, 5.0);
}

TEST(NetworkTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Network net(42);
    LinkConfig link;
    link.rate = Mbps(80);
    link.propagation_delay = Milliseconds(10);
    link.buffer_bytes = 200'000;
    link.random_loss = 0.01;
    net.AddLink(link);
    FlowSpec spec;
    spec.scheme = "vegas";
    spec.make_cc = [] { return std::make_unique<Vegas>(); };
    net.AddFlow(spec);
    net.Run(Seconds(10.0));
    return net.flow_stats(0).bytes_acked;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace astraea
