#include <gtest/gtest.h>

#include <filesystem>

#include "src/core/policy.h"

namespace astraea {
namespace {

// Builds a StateView over a synthetic report; `state` must outlive the view.
struct ViewFixture {
  ViewFixture(double cwnd_pkts, TimeNs lat, TimeNs lat_min, double loss_ratio = 0.0) {
    report.now = Milliseconds(30);
    report.mtp = Milliseconds(30);
    report.cwnd_bytes = static_cast<uint64_t>(cwnd_pkts * 1500);
    report.avg_rtt = lat;
    report.srtt = lat;
    report.min_rtt = lat_min;
    report.acked_packets = 50;
    report.loss_ratio = loss_ratio;
    report.thr_bps = Mbps(50);
    report.pacing_bps = Mbps(50);
    state.assign(40, 0.0f);
    view.state_vector = state;
    view.report = &report;
    view.lat_min = lat_min;
    view.thr_max_bps = Mbps(100);
    view.mss = 1500;
    view.mtp = Milliseconds(30);
    view.action_alpha = 0.025;
  }
  MtpReport report;
  std::vector<float> state;
  StateView view;
};

TEST(ActionBlockTest, Eq3MappingMatchesPaper) {
  // a >= 0: cwnd * (1 + alpha*a); a < 0: cwnd / (1 - alpha*a).
  EXPECT_EQ(ApplyActionToCwnd(100'000, 1.0, 0.025, 1500), 102'500u);
  EXPECT_EQ(ApplyActionToCwnd(100'000, 0.0, 0.025, 1500), 100'000u);
  EXPECT_EQ(ApplyActionToCwnd(102'500, -1.0, 0.025, 1500),
            static_cast<uint64_t>(102'500 / 1.025));
}

TEST(ActionBlockTest, InverseConsistency) {
  // +a then -a returns to the original window (the Eq. 3 asymmetric form's
  // point): cwnd*(1+aa) / (1+aa) == cwnd.
  const uint64_t w0 = 300'000;
  for (double a : {0.1, 0.5, 1.0}) {
    const uint64_t up = ApplyActionToCwnd(w0, a, 0.025, 1500);
    const uint64_t back = ApplyActionToCwnd(up, -a, 0.025, 1500);
    EXPECT_NEAR(static_cast<double>(back), static_cast<double>(w0), 2.0) << "a=" << a;
  }
}

TEST(ActionBlockTest, FloorAtTwoMss) {
  EXPECT_EQ(ApplyActionToCwnd(3000, -1.0, 0.025, 1500), 3000u);
  EXPECT_EQ(ApplyActionToCwnd(100, -1.0, 0.025, 1500), 3000u);
}

TEST(ActionBlockTest, ActionsAreClamped) {
  EXPECT_EQ(ApplyActionToCwnd(100'000, 5.0, 0.025, 1500),
            ApplyActionToCwnd(100'000, 1.0, 0.025, 1500));
}

TEST(DistilledPolicyTest, ActionDecreasesWithDelay) {
  // The Fig. 17 structure: at fixed cwnd, higher observed delay -> lower action.
  DistilledPolicy policy;
  double prev = 2.0;
  for (int ms = 30; ms <= 90; ms += 10) {
    ViewFixture fx(100, Milliseconds(ms), Milliseconds(30));
    const double a = policy.Act(fx.view);
    EXPECT_LE(a, prev + 1e-9) << "lat=" << ms;
    prev = a;
  }
}

TEST(DistilledPolicyTest, EmptyQueueMeansIncrease) {
  DistilledPolicy policy;
  ViewFixture fx(100, Milliseconds(30), Milliseconds(30));
  EXPECT_GT(policy.Act(fx.view), 0.5);
}

TEST(DistilledPolicyTest, DeepQueueMeansDecrease) {
  DistilledPolicy policy;
  ViewFixture fx(200, Milliseconds(90), Milliseconds(30));  // backlog ~133 pkts >> K
  EXPECT_LT(policy.Act(fx.view), -0.5);
}

TEST(DistilledPolicyTest, EquilibriumTransfersBandwidthToSmallFlow) {
  // Two flows sharing one queue observe the same delay. The higher-cwnd flow
  // must receive the lower action (the §5.5 bandwidth-transfer argument).
  DistilledPolicy policy;
  const TimeNs shared_lat = Milliseconds(36);
  ViewFixture big(200, shared_lat, Milliseconds(30));
  ViewFixture small(50, shared_lat, Milliseconds(30));
  EXPECT_LT(policy.Act(big.view), policy.Act(small.view));
}

TEST(DistilledPolicyTest, EquilibriumActionIsZeroAtTargetBacklog) {
  DistilledPolicy policy;
  const double k = policy.config().target_backlog_pkts;
  // Choose lat so that cwnd*(1 - lat_min/lat) == K: lat = lat_min/(1 - K/cwnd).
  const double cwnd = 100;
  const double lat_min_ms = 30.0;
  const double lat_ms = lat_min_ms / (1.0 - k / cwnd);
  ViewFixture fx(cwnd, static_cast<TimeNs>(lat_ms * kNanosPerMilli),
                 Milliseconds(30));
  EXPECT_NEAR(policy.Act(fx.view), 0.0, 0.1);
}

TEST(DistilledPolicyTest, HeavyLossForcesBackoff) {
  DistilledPolicy policy;
  ViewFixture fx(100, Milliseconds(30), Milliseconds(30), /*loss_ratio=*/0.2);
  EXPECT_LT(policy.Act(fx.view), 0.0);
}

TEST(DistilledPolicyTest, ToleratesNonCongestiveLoss) {
  // 0.74% random loss (the satellite scenario) must not trigger backoff when
  // the queue is empty.
  DistilledPolicy policy;
  ViewFixture fx(100, Milliseconds(30), Milliseconds(30), /*loss_ratio=*/0.0074);
  EXPECT_GT(policy.Act(fx.view), 0.0);
}

TEST(DistilledPolicyTest, IdleMtpProbesUpward) {
  DistilledPolicy policy;
  ViewFixture fx(100, Milliseconds(30), Milliseconds(30));
  fx.report.acked_packets = 0;
  EXPECT_DOUBLE_EQ(policy.Act(fx.view), 1.0);
}

TEST(DistilledPolicyTest, GainNormalizationKeepsActionsModestNearEquilibrium) {
  // At 10x the RTT and 10x the cwnd (same BDP scale-up), the action stays in
  // a comparable range instead of exploding — the loop-gain normalization.
  DistilledPolicy policy;
  ViewFixture small(100, Milliseconds(33), Milliseconds(30));
  ViewFixture large(1000, Milliseconds(330), Milliseconds(300));
  large.view.lat_min = Milliseconds(300);
  EXPECT_LT(std::abs(policy.Act(large.view)), 1.0);
  EXPECT_LT(std::abs(policy.Act(large.view) - policy.Act(small.view)), 0.8);
}

TEST(MlpPolicyTest, RunsACheckpointRoundTrip) {
  Rng rng(1);
  Mlp actor({40, 16, 1}, OutputActivation::kTanh, &rng);
  const std::string path = "/tmp/astraea_policy_test.ckpt";
  {
    BinaryWriter w(path);
    actor.Save(&w);
  }
  auto policy = MlpPolicy::LoadFromFile(path);
  ViewFixture fx(100, Milliseconds(40), Milliseconds(30));
  const double a = policy->Act(fx.view);
  EXPECT_GE(a, -1.0);
  EXPECT_LE(a, 1.0);
  // Must equal the raw actor output.
  EXPECT_NEAR(a, actor.Infer(fx.view.state_vector)[0], 1e-6);
  std::filesystem::remove(path);
}

TEST(MlpPolicyTest, ShippedTrainedArtifactLoads) {
  // models/astraea_policy_trained.ckpt is the checked-in trained actor. It
  // must parse as a real network — historically it was corrupt and every
  // consumer silently fell back to the distilled policy (ROADMAP 1d), which
  // made "trained" benches measure the wrong controller.
  const std::string path =
      std::string(ASTRAEA_SOURCE_DIR) + "/models/astraea_policy_trained.ckpt";
  ASSERT_TRUE(std::filesystem::exists(path)) << path;
  const auto policy = MlpPolicy::LoadFromFile(path);
  EXPECT_EQ(policy->actor().input_size(), 40);  // kLocalFeatures * history
  EXPECT_EQ(policy->actor().output_size(), 1);
  ViewFixture fx(100, Milliseconds(40), Milliseconds(30));
  const double a = policy->Act(fx.view);
  EXPECT_GE(a, -1.0);
  EXPECT_LE(a, 1.0);
  // And the default loader must pick it up as the trained policy, not the
  // distilled fallback.
  EXPECT_EQ(LoadDefaultPolicy(path)->name(), "astraea-mlp");
}

TEST(LoadDefaultPolicyTest, FallsBackToDistilled) {
  // With no checkpoint anywhere, the loader must return the distilled policy.
  const auto policy = LoadDefaultPolicy("/nonexistent/path.ckpt");
  EXPECT_EQ(policy->name(), "astraea-distilled");
}

}  // namespace
}  // namespace astraea
