#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "src/train/promotion.h"

namespace astraea {
namespace {

// Always shrinks the window: drives utilization toward the floor on every
// scenario, so it reliably loses to any reasonable policy.
class CrippledPolicy : public Policy {
 public:
  double Act(const StateView&) const override { return -1.0; }
  std::string name() const override { return "crippled"; }
};

// One short, small scenario keeps each Evaluate() to a fraction of a second.
GateOptions QuickGate() {
  GateOptions options;
  GateScenario scenario;
  scenario.name = "quick";
  scenario.bandwidth = Mbps(24);
  scenario.base_rtt = Milliseconds(30);
  scenario.flows = 2;
  scenario.until = Seconds(4.0);
  options.suite = {scenario};
  return options;
}

TEST(PromotionGateTest, RejectsAWorseCandidate) {
  PromotionGate gate(QuickGate());
  const GateReport report = gate.Compare(std::make_shared<CrippledPolicy>(),
                                         std::make_shared<DistilledPolicy>());
  EXPECT_FALSE(report.accepted);
  EXPECT_EQ(report.losses, 1);
  EXPECT_LT(report.candidate_total, report.incumbent_total);
}

TEST(PromotionGateTest, AcceptsABetterCandidate) {
  PromotionGate gate(QuickGate());
  const GateReport report = gate.Compare(std::make_shared<DistilledPolicy>(),
                                         std::make_shared<CrippledPolicy>());
  EXPECT_TRUE(report.accepted);
  EXPECT_EQ(report.wins, 1);
  EXPECT_GT(report.candidate_total, report.incumbent_total);
}

TEST(PromotionGateTest, TieKeepsTheIncumbent) {
  // Identical policies score identically (Evaluate is deterministic); a tie
  // must not trigger a pointless install.
  PromotionGate gate(QuickGate());
  const auto policy = std::make_shared<DistilledPolicy>();
  const GateReport report = gate.Compare(policy, policy);
  EXPECT_FALSE(report.accepted);
  EXPECT_EQ(report.wins, 0);
  EXPECT_EQ(report.losses, 0);
  EXPECT_DOUBLE_EQ(report.candidate_total, report.incumbent_total);
}

TEST(PromotionGateTest, EvaluateIsDeterministic) {
  PromotionGate gate(QuickGate());
  const auto policy = std::make_shared<DistilledPolicy>();
  const ScenarioScore a = gate.Evaluate(gate.options().suite[0], policy);
  const ScenarioScore b = gate.Evaluate(gate.options().suite[0], policy);
  EXPECT_EQ(a.composite, b.composite);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.p95_delay_ms, b.p95_delay_ms);
}

TEST(PromotionGateTest, DefaultSuiteIsTheGoldenTrio) {
  PromotionGate gate;
  ASSERT_EQ(gate.options().suite.size(), 3u);
  EXPECT_EQ(gate.options().suite[0].name, "clean");
  EXPECT_EQ(gate.options().suite[1].name, "lossy");
  EXPECT_EQ(gate.options().suite[2].name, "red");
}

TEST(PromotionGateTest, CompareFilesRejectsAnUnparsableCandidate) {
  // A candidate that cannot load as a trained network must error out, not
  // silently fall back to the distilled policy and "win" (ROADMAP 1d).
  const std::string garbage = "/tmp/astraea_promotion_garbage.ckpt";
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "not a checkpoint";
  }
  PromotionGate gate(QuickGate());
  EXPECT_THROW(gate.CompareFiles(garbage, garbage), SerializationError);
  std::filesystem::remove(garbage);
}

TEST(PromotionGateTest, ReportSerializesToJson) {
  PromotionGate gate(QuickGate());
  const GateReport report = gate.Compare(std::make_shared<DistilledPolicy>(),
                                         std::make_shared<CrippledPolicy>());
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"accepted\":true"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"quick\""), std::string::npos);
  EXPECT_NE(json.find("\"utilization\""), std::string::npos);
}

// The universe suite (astraea_promote --suite=universe), trimmed to a
// test-sized horizon. Scenario shapes — ECN bottleneck, trace replay, cross
// traffic — are exactly the shipped suite's; only `until` shrinks.
GateOptions UniverseGate() {
  GateOptions options;
  options.suite = UniverseGateSuite(std::string(ASTRAEA_SOURCE_DIR) + "/traces");
  for (GateScenario& scenario : options.suite) {
    scenario.until = Seconds(3.0);
  }
  return options;
}

TEST(UniverseGateTest, SuiteCoversTheThreeRegimes) {
  const auto suite = UniverseGateSuite("/does/not/matter");
  ASSERT_EQ(suite.size(), 3u);
  EXPECT_EQ(suite[0].name, "shallow-ecn");
  EXPECT_TRUE(suite[0].ecn);
  EXPECT_EQ(suite[1].name, "cellular");
  EXPECT_EQ(suite[1].trace_path, "/does/not/matter/cellular.trace");
  EXPECT_EQ(suite[2].name, "contested");
  EXPECT_TRUE(suite[2].cross_traffic);
}

TEST(UniverseGateTest, AcceptsBetterRejectsWorse) {
  // The distilled policy must clearly beat the window-collapsing one on the
  // trace and contested regimes; shallow-ecn can tie (even a crippled window
  // refills a 10 ms-RTT pipe between decisions), so assert the verdict and a
  // majority of wins rather than a clean sweep.
  PromotionGate gate(UniverseGate());
  const GateReport accept = gate.Compare(std::make_shared<DistilledPolicy>(),
                                         std::make_shared<CrippledPolicy>());
  EXPECT_TRUE(accept.accepted);
  EXPECT_GE(accept.wins, 2) << accept.ToJson();
  EXPECT_GT(accept.candidate_total, accept.incumbent_total);
  const GateReport reject = gate.Compare(std::make_shared<CrippledPolicy>(),
                                         std::make_shared<DistilledPolicy>());
  EXPECT_FALSE(reject.accepted);
  EXPECT_GE(reject.losses, 2);
}

TEST(UniverseGateTest, CrossTrafficShapesButDoesNotPolluteScores) {
  // The contested scenario's competitor + blast must depress the Astraea
  // flows' utilization relative to the same link without cross traffic —
  // proof the cross traffic is real and the scoring window is Astraea-only.
  PromotionGate gate(UniverseGate());
  GateScenario contested = gate.options().suite[2];
  ASSERT_TRUE(contested.cross_traffic);
  GateScenario uncontested = contested;
  uncontested.cross_traffic = false;
  const auto policy = std::make_shared<DistilledPolicy>();
  const ScenarioScore with = gate.Evaluate(contested, policy);
  const ScenarioScore without = gate.Evaluate(uncontested, policy);
  EXPECT_LT(with.utilization, without.utilization);
}

TEST(AtomicInstallTest, ReplacesTheTargetBytes) {
  const std::string candidate = "/tmp/astraea_install_candidate.bin";
  const std::string target = "/tmp/astraea_install_target.bin";
  {
    std::ofstream out(candidate, std::ios::binary);
    out << "new-policy-bytes";
  }
  {
    std::ofstream out(target, std::ios::binary);
    out << "old";
  }
  AtomicInstall(candidate, target);
  std::ifstream in(target, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes, "new-policy-bytes");
  EXPECT_FALSE(std::filesystem::exists(target + ".tmp"));
  std::filesystem::remove(candidate);
  std::filesystem::remove(target);
}

TEST(AtomicInstallTest, MissingCandidateThrowsAndLeavesTargetIntact) {
  const std::string target = "/tmp/astraea_install_keep.bin";
  {
    std::ofstream out(target, std::ios::binary);
    out << "incumbent";
  }
  EXPECT_THROW(AtomicInstall("/tmp/astraea_no_such_candidate.bin", target),
               SerializationError);
  std::ifstream in(target, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes, "incumbent");
  std::filesystem::remove(target);
}

}  // namespace
}  // namespace astraea
