#include <gtest/gtest.h>

#include "src/cc/cubic.h"
#include "src/sim/network.h"
#include "src/sim/packet_pool.h"
#include "src/sim/queue_disc.h"

namespace astraea {
namespace {

// Shared pool for the unit tests; the fixture attaches it to each discipline
// and releases dequeued packets so leak checks stay meaningful.
class QueueDiscTest : public ::testing::Test {
 protected:
  PacketRef MakePacket(uint64_t seq, uint32_t size = 1500) {
    const PacketRef ref = pool_.Acquire();
    Packet& pkt = pool_.Get(ref);
    pkt.flow_id = 0;
    pkt.seq = seq;
    pkt.size_bytes = size;
    pkt.sent_time = 0;
    pkt.route = nullptr;
    pkt.hop = 0;
    return ref;
  }

  // Dequeues, releases the slot and returns the packet's seq (or nullopt).
  std::optional<uint64_t> DequeueSeq(QueueDiscipline& q, TimeNs now) {
    const std::optional<PacketRef> ref = q.Dequeue(now);
    if (!ref.has_value()) {
      return std::nullopt;
    }
    const uint64_t seq = pool_.Get(*ref).seq;
    pool_.Release(*ref);
    return seq;
  }

  PacketPool pool_;
};

using DropTailQueueTest = QueueDiscTest;
using RedQueueTest = QueueDiscTest;
using CoDelQueueTest = QueueDiscTest;

TEST_F(DropTailQueueTest, FifoAndCapacity) {
  DropTailQueue q(3000);
  q.set_pool(&pool_);
  EXPECT_TRUE(q.Enqueue(MakePacket(0), 0));
  EXPECT_TRUE(q.Enqueue(MakePacket(1), 0));
  EXPECT_FALSE(q.Enqueue(MakePacket(2), 0));  // full
  EXPECT_EQ(q.queued_packets(), 2u);
  EXPECT_EQ(q.dropped_bytes(), 1500u);
  EXPECT_EQ(DequeueSeq(q, 0), 0u);
  EXPECT_EQ(DequeueSeq(q, 0), 1u);
  EXPECT_FALSE(DequeueSeq(q, 0).has_value());
  EXPECT_EQ(q.queued_bytes(), 0u);
  EXPECT_EQ(pool_.live(), 0u);  // drops and dequeues all returned their slots
}

TEST_F(RedQueueTest, NoDropsBelowMinThreshold) {
  RedConfig config;
  config.capacity_bytes = 150'000;  // 100 packets
  RedQueue q(config, Rng(1));
  q.set_pool(&pool_);
  // Keep instantaneous queue below min threshold (20 pkts): never drops.
  for (int round = 0; round < 200; ++round) {
    EXPECT_TRUE(q.Enqueue(MakePacket(static_cast<uint64_t>(round)), 0));
    DequeueSeq(q, 0);
  }
  EXPECT_EQ(q.dropped_bytes(), 0u);
  EXPECT_EQ(pool_.live(), 0u);
}

TEST_F(RedQueueTest, ProbabilisticDropsBetweenThresholds) {
  RedConfig config;
  config.capacity_bytes = 150'000;
  config.ewma_weight = 1.0;  // track the instantaneous queue exactly
  RedQueue q(config, Rng(2));
  q.set_pool(&pool_);
  // Hold the queue at ~40% (between min 20% and max 60%): some but not all
  // enqueues drop.
  int dropped = 0;
  int accepted = 0;
  for (int i = 0; i < 40; ++i) {
    q.Enqueue(MakePacket(static_cast<uint64_t>(i)), 0);
  }
  for (int i = 0; i < 2000; ++i) {
    if (q.Enqueue(MakePacket(static_cast<uint64_t>(100 + i)), 0)) {
      ++accepted;
      DequeueSeq(q, 0);  // keep occupancy level
    } else {
      ++dropped;
    }
  }
  EXPECT_GT(dropped, 0);
  EXPECT_GT(accepted, dropped);  // drops are early/probabilistic, not total
}

// Regression (Floyd/Jacobson Sec. 11): the EWMA froze while the queue sat
// empty, so a burst after a long idle period was greeted with the stale
// pre-idle average — deterministic drops at avg >= max_th despite an empty
// queue. The idle correction decays avg by (1-w)^m, m = idle / pkt-tx-time.
TEST_F(RedQueueTest, IdleTimeDecaysAverage) {
  RedConfig config;
  config.capacity_bytes = 150'000;  // 100 packets
  config.ewma_weight = 0.2;
  config.max_drop_probability = 0.0;  // isolate the EWMA from random drops
  config.idle_pkt_tx_time = Microseconds(120);
  RedQueue q(config, Rng(7));
  q.set_pool(&pool_);

  // Back-to-back fill: the average climbs above the max threshold (60%).
  TimeNs now = 0;
  for (int i = 0; i < 100; ++i) {
    q.Enqueue(MakePacket(static_cast<uint64_t>(i)), now);
    now += Microseconds(10);
  }
  EXPECT_GE(q.average_queue_bytes(), 0.6 * 150'000);
  const double avg_before_idle = q.average_queue_bytes();

  // Drain completely, then idle for a second (~8300 packet slots).
  while (DequeueSeq(q, now).has_value()) {
    now += Microseconds(10);
  }
  now += Seconds(1.0);

  // The first post-idle arrival must see a (nearly) fully decayed average and
  // be accepted; without the correction avg stays near avg_before_idle.
  EXPECT_TRUE(q.Enqueue(MakePacket(1000), now));
  EXPECT_LT(q.average_queue_bytes(), 3000.0);
  EXPECT_LT(q.average_queue_bytes(), 0.05 * avg_before_idle);
}

TEST_F(RedQueueTest, HardLimitAlwaysDrops) {
  RedConfig config;
  config.capacity_bytes = 4500;
  RedQueue q(config, Rng(3));
  q.set_pool(&pool_);
  q.Enqueue(MakePacket(0), 0);
  q.Enqueue(MakePacket(1), 0);
  q.Enqueue(MakePacket(2), 0);
  EXPECT_FALSE(q.Enqueue(MakePacket(3), 0));
}

TEST_F(CoDelQueueTest, NoDropsWhenSojournBelowTarget) {
  CoDelConfig config;
  CoDelQueue q(config);
  q.set_pool(&pool_);
  // Packets dequeued 1ms after enqueue: below the 5ms target.
  TimeNs now = 0;
  for (int i = 0; i < 100; ++i) {
    q.Enqueue(MakePacket(static_cast<uint64_t>(i)), now);
    now += Milliseconds(1);
    EXPECT_TRUE(DequeueSeq(q, now).has_value());
  }
  EXPECT_EQ(q.dropped_bytes(), 0u);
  EXPECT_EQ(pool_.live(), 0u);
}

TEST_F(CoDelQueueTest, DropsAfterPersistentQueueing) {
  CoDelConfig config;
  CoDelQueue q(config);
  q.set_pool(&pool_);
  // Fill a standing queue, then dequeue slowly so sojourn stays >> target
  // for longer than one interval.
  for (int i = 0; i < 200; ++i) {
    q.Enqueue(MakePacket(static_cast<uint64_t>(i)), 0);
  }
  TimeNs now = Milliseconds(50);
  uint64_t served = 0;
  for (int i = 0; i < 150; ++i) {
    now += Milliseconds(2);
    if (DequeueSeq(q, now).has_value()) {
      ++served;
    }
  }
  EXPECT_GT(q.dropped_bytes(), 0u);
  EXPECT_GT(served, 0u);
}

// Regression (RFC 8289 Sec. 4.4): the one-MTU exit condition was hardcoded to
// 1500 bytes, so with small packets (mss 500) a persistent 3-deep standing
// queue — 1500 bytes of backlog with sojourn far above target — never
// triggered dropping. The MTU is now configurable and must match the MSS.
TEST_F(CoDelQueueTest, MtuExitConditionMatchesPacketSize) {
  auto standing_queue_drops = [this](uint32_t mtu) {
    CoDelConfig config;
    config.mtu = mtu;
    CoDelQueue q(config);
    q.set_pool(&pool_);
    TimeNs now = 0;
    uint64_t seq = 0;
    // Maintain a 3-packet standing queue of 500-byte packets; each packet
    // waits 150ms before service — 30x the 5ms target.
    for (int i = 0; i < 3; ++i) {
      q.Enqueue(MakePacket(seq++, 500), now);
    }
    for (int i = 0; i < 400; ++i) {
      now += Milliseconds(50);
      DequeueSeq(q, now);
      q.Enqueue(MakePacket(seq++, 500), now);
    }
    return q.dropped_bytes();
  };
  // Backlog is 1500 bytes: a 1500-byte MTU exempts it forever (the old
  // hardcoded behavior); with the MTU at the true packet size CoDel engages.
  EXPECT_EQ(standing_queue_drops(1500), 0u);
  EXPECT_GT(standing_queue_drops(500), 0u);
}

TEST_F(CoDelQueueTest, RecoversWhenQueueDrains) {
  CoDelConfig config;
  CoDelQueue q(config);
  q.set_pool(&pool_);
  for (int i = 0; i < 100; ++i) {
    q.Enqueue(MakePacket(static_cast<uint64_t>(i)), 0);
  }
  TimeNs now = Milliseconds(200);
  while (q.queued_packets() > 0) {
    DequeueSeq(q, now);
    now += Milliseconds(2);
  }
  // Re-enqueue with low sojourn: dropping state must end.
  q.Enqueue(MakePacket(1000), now);
  EXPECT_TRUE(DequeueSeq(q, now + Milliseconds(1)).has_value());
  EXPECT_FALSE(q.dropping());
  EXPECT_EQ(pool_.live(), 0u);
}

// End-to-end: CoDel keeps CUBIC's standing delay near the target where
// DropTail lets it fill the whole buffer.
TEST(QueueDiscIntegrationTest, CoDelCutsCubicBufferbloat) {
  auto run = [](QueueFactory factory) {
    Network net(1);
    LinkConfig link;
    link.rate = Mbps(50);
    link.propagation_delay = Milliseconds(10);
    link.buffer_bytes = 4 * BdpBytes(Mbps(50), Milliseconds(20));
    link.queue_factory = std::move(factory);
    net.AddLink(link);
    FlowSpec spec;
    spec.scheme = "cubic";
    spec.make_cc = [] { return std::make_unique<Cubic>(); };
    net.AddFlow(spec);
    net.Run(Seconds(20.0));
    return net.flow_stats(0).rtt_ms.MeanOver(Seconds(5.0), Seconds(20.0));
  };
  const double droptail_rtt = run(nullptr  // default DropTail
  );
  const double codel_rtt = run([](Rng) {
    CoDelConfig config;
    config.capacity_bytes = 4 * BdpBytes(Mbps(50), Milliseconds(20));
    return std::make_unique<CoDelQueue>(config);
  });
  EXPECT_LT(codel_rtt, droptail_rtt * 0.7);
  EXPECT_LT(codel_rtt, 40.0);  // near the 20ms base + CoDel target
}

TEST(QueueDiscIntegrationTest, RedKeepsQueueBelowDropTail) {
  auto run = [](QueueFactory factory) {
    Network net(2);
    LinkConfig link;
    link.rate = Mbps(50);
    link.propagation_delay = Milliseconds(10);
    link.buffer_bytes = 4 * BdpBytes(Mbps(50), Milliseconds(20));
    link.queue_factory = std::move(factory);
    net.AddLink(link);
    FlowSpec spec;
    spec.scheme = "cubic";
    spec.make_cc = [] { return std::make_unique<Cubic>(); };
    net.AddFlow(spec);
    net.Run(Seconds(20.0));
    return net.flow_stats(0).rtt_ms.MeanOver(Seconds(5.0), Seconds(20.0));
  };
  const double droptail_rtt = run(nullptr);
  const double red_rtt = run([](Rng rng) {
    RedConfig config;
    config.capacity_bytes = 4 * BdpBytes(Mbps(50), Milliseconds(20));
    return std::make_unique<RedQueue>(config, rng);
  });
  EXPECT_LT(red_rtt, droptail_rtt);
}

}  // namespace
}  // namespace astraea
