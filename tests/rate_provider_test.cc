#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/sim/link_trace.h"
#include "src/sim/rate_provider.h"
#include "src/util/serialization.h"

namespace astraea {
namespace {

TEST(ConstantRateTest, RateAndCapacity) {
  ConstantRate r(Mbps(80));
  EXPECT_DOUBLE_EQ(r.RateAt(0), Mbps(80));
  EXPECT_DOUBLE_EQ(r.RateAt(Seconds(100.0)), Mbps(80));
  EXPECT_DOUBLE_EQ(r.CapacityBits(0, Seconds(2.0)), 160e6);
}

TEST(RateTraceTest, PiecewiseLookup) {
  RateTrace trace({{0, Mbps(10)}, {Milliseconds(100), Mbps(20)}, {Milliseconds(200), Mbps(30)}});
  EXPECT_DOUBLE_EQ(trace.RateAt(Milliseconds(50)), Mbps(10));
  EXPECT_DOUBLE_EQ(trace.RateAt(Milliseconds(100)), Mbps(20));
  EXPECT_DOUBLE_EQ(trace.RateAt(Milliseconds(150)), Mbps(20));
  EXPECT_DOUBLE_EQ(trace.RateAt(Milliseconds(250)), Mbps(30));
}

TEST(RateTraceTest, WrapsAround) {
  RateTrace trace({{0, Mbps(10)}, {Milliseconds(100), Mbps(20)}});
  // Duration = 200ms (last start + slot of 100ms); t=210ms maps to t=10ms.
  EXPECT_DOUBLE_EQ(trace.RateAt(Milliseconds(210)), Mbps(10));
  EXPECT_DOUBLE_EQ(trace.RateAt(Milliseconds(310)), Mbps(20));
}

TEST(RateTraceTest, CapacityIntegral) {
  RateTrace trace({{0, Mbps(10)}, {Milliseconds(100), Mbps(30)}});
  // 100ms at 10 Mbps + 100ms at 30 Mbps = 1e6 + 3e6 bits.
  EXPECT_NEAR(trace.CapacityBits(0, Milliseconds(200)), 4e6, 1.0);
}

TEST(LteTraceTest, StaysWithinBounds) {
  Rng rng(3);
  RateTrace trace = MakeLteLikeTrace(Seconds(30.0), Milliseconds(20), Mbps(0.5), Mbps(60), &rng);
  for (TimeNs t = 0; t < Seconds(30.0); t += Milliseconds(20)) {
    const RateBps r = trace.RateAt(t);
    EXPECT_GE(r, Mbps(0.5) * 0.999);
    EXPECT_LE(r, Mbps(60) * 1.001);
  }
}

TEST(LteTraceTest, ActuallyVaries) {
  Rng rng(4);
  RateTrace trace = MakeLteLikeTrace(Seconds(10.0), Milliseconds(20), Mbps(1), Mbps(50), &rng);
  double lo = 1e18;
  double hi = 0.0;
  for (TimeNs t = 0; t < Seconds(10.0); t += Milliseconds(20)) {
    lo = std::min(lo, trace.RateAt(t));
    hi = std::max(hi, trace.RateAt(t));
  }
  EXPECT_GT(hi / lo, 2.0);  // drastic variation is the point of this trace
}

TEST(MahimahiTraceTest, RoundTripPreservesRate) {
  // Save a constant 12 Mbps trace (one 1500B packet per ms), reload, compare.
  RateTrace original({{0, Mbps(12)}, {Seconds(1.0), Mbps(12)}});
  const std::string path = "/tmp/astraea_trace_test.txt";
  SaveMahimahiTrace(original, path, Seconds(2.0));
  RateTrace loaded = LoadMahimahiTrace(path);
  for (TimeNs t = 0; t < Seconds(2.0); t += Milliseconds(100)) {
    EXPECT_NEAR(loaded.RateAt(t) / Mbps(12), 1.0, 0.05) << ToMillis(t);
  }
  std::filesystem::remove(path);
}

TEST(MahimahiTraceTest, VariableRateRoundTrip) {
  RateTrace original = MakeSquareWaveTrace(Seconds(2.0), Milliseconds(500), Mbps(6), Mbps(24));
  const std::string path = "/tmp/astraea_trace_sq.txt";
  SaveMahimahiTrace(original, path, Seconds(2.0));
  RateTrace loaded = LoadMahimahiTrace(path, 1500, Milliseconds(100));
  // Total capacity over the period must match within a few packets.
  EXPECT_NEAR(loaded.CapacityBits(0, Seconds(2.0)) / original.CapacityBits(0, Seconds(2.0)),
              1.0, 0.03);
}

TEST(MahimahiTraceTest, MissingFileThrows) {
  EXPECT_THROW(LoadMahimahiTrace("/nonexistent/trace.txt"), SerializationError);
}

namespace {
void WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
}
}  // namespace

TEST(MahimahiTraceTest, EmptyTraceFileThrows) {
  const std::string path = "/tmp/astraea_trace_empty.txt";
  WriteTextFile(path, "");
  EXPECT_THROW(LoadMahimahiTrace(path), SerializationError);
  WriteTextFile(path, "# only a comment\n\n");
  EXPECT_THROW(LoadMahimahiTrace(path), SerializationError);
  std::filesystem::remove(path);
}

TEST(MahimahiTraceTest, SingleEntryWrapsAround) {
  // One opportunity at ms 0: a single 20 ms slot of 1500*8/0.02 = 600 Kbps
  // that the RateTrace repeats forever (standard Mahimahi looping).
  const std::string path = "/tmp/astraea_trace_single.txt";
  WriteTextFile(path, "0\n");
  const RateTrace trace = LoadMahimahiTrace(path);
  const RateBps slot_rate = trace.RateAt(0);
  EXPECT_NEAR(slot_rate, 1500 * 8 / 0.02, 1.0);
  EXPECT_DOUBLE_EQ(trace.RateAt(Seconds(5.0)), slot_rate);
  EXPECT_DOUBLE_EQ(trace.RateAt(Seconds(123.456)), slot_rate);
  std::filesystem::remove(path);
}

TEST(MahimahiTraceTest, ZeroRateIntervalsFlooredNotZero) {
  // A burst at ms 0 then silence until ms 100: the empty slots must come
  // back as the 1 Kbps floor, never zero (a zero-rate link would never
  // schedule another service event and the simulation would hang).
  const std::string path = "/tmp/astraea_trace_outage.txt";
  WriteTextFile(path, "0\n0\n0\n100\n");
  const RateTrace trace = LoadMahimahiTrace(path);
  EXPECT_GT(trace.RateAt(0), Kbps(1.0));
  for (TimeNs t = Milliseconds(20); t < Milliseconds(100); t += Milliseconds(20)) {
    EXPECT_DOUBLE_EQ(trace.RateAt(t), Kbps(1.0)) << ToMillis(t);
  }
  std::filesystem::remove(path);
}

TEST(MahimahiTraceTest, NonMonotoneTimestampsRejected) {
  const std::string path = "/tmp/astraea_trace_nonmono.txt";
  WriteTextFile(path, "10\n20\n15\n");
  EXPECT_THROW(LoadMahimahiTrace(path), SerializationError);
  std::filesystem::remove(path);
}

TEST(MahimahiTraceTest, ExportReloadIsBitIdentical) {
  // Export a synthetic-variation trace and reload it: both paths reduce to
  // ToRateTrace over identical opportunity lists, so every step of the
  // reloaded RateTrace must be bit-identical (==, not NEAR) to the direct
  // conversion. This is what lets --trace replays regress against goldens.
  Rng rng(42);
  const RateTrace synthetic =
      MakeLteLikeTrace(Seconds(3.0), Milliseconds(20), Mbps(1), Mbps(40), &rng);
  const LinkRateTrace opportunities = FromRateTrace(synthetic, Seconds(3.0));
  const RateTrace direct = ToRateTrace(opportunities);

  const std::string path = "/tmp/astraea_trace_bitident.txt";
  SaveLinkRateTraceFile(opportunities, path);
  const RateTrace reloaded = LoadMahimahiTrace(path);

  ASSERT_EQ(reloaded.steps().size(), direct.steps().size());
  for (size_t i = 0; i < direct.steps().size(); ++i) {
    EXPECT_EQ(reloaded.steps()[i].first, direct.steps()[i].first) << i;
    EXPECT_EQ(reloaded.steps()[i].second, direct.steps()[i].second) << i;
  }
  // And SaveMahimahiTrace (the RateTrace-level wrapper) writes the same
  // bytes as the canonical serializer on the same opportunity walk.
  const std::string path2 = "/tmp/astraea_trace_bitident2.txt";
  SaveMahimahiTrace(synthetic, path2, Seconds(3.0));
  EXPECT_EQ(LoadLinkRateTraceFile(path2), opportunities);
  std::filesystem::remove(path);
  std::filesystem::remove(path2);
}

TEST(SquareWaveTest, Alternates) {
  RateTrace trace = MakeSquareWaveTrace(Seconds(4.0), Seconds(1.0), Mbps(10), Mbps(50));
  EXPECT_DOUBLE_EQ(trace.RateAt(Milliseconds(500)), Mbps(50));
  EXPECT_DOUBLE_EQ(trace.RateAt(Milliseconds(1500)), Mbps(10));
  EXPECT_DOUBLE_EQ(trace.RateAt(Milliseconds(2500)), Mbps(50));
}

}  // namespace
}  // namespace astraea
