#include <gtest/gtest.h>

#include <cmath>

#include "src/core/reward.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace astraea {
namespace {

FlowRewardInput MakeFlow(double thr_mbps, double avg_thr_mbps, TimeNs lat = Milliseconds(30),
                         double loss_mbps = 0.0, double stability = 0.0) {
  FlowRewardInput f;
  f.thr_bps = Mbps(thr_mbps);
  f.avg_thr_bps = Mbps(avg_thr_mbps);
  f.avg_lat = lat;
  f.loss_bps = Mbps(loss_mbps);
  f.pacing_bps = f.thr_bps;
  f.stability = stability;
  return f;
}

TEST(RewardThroughputTest, FractionOfCapacity) {
  std::vector<FlowRewardInput> flows = {MakeFlow(40, 40), MakeFlow(40, 40)};
  EXPECT_DOUBLE_EQ(RewardThroughput(flows, Mbps(100)), 0.8);
}

TEST(RewardLossTest, AverageOfPerFlowRatios) {
  std::vector<FlowRewardInput> flows = {MakeFlow(50, 50, Milliseconds(30), 5.0),
                                        MakeFlow(50, 50, Milliseconds(30), 0.0)};
  EXPECT_DOUBLE_EQ(RewardLoss(flows), 0.05);  // (0.1 + 0)/2
}

TEST(RewardLatencyTest, GraceBandIsFree) {
  RewardCoefficients coeff;
  // Base one-way delay 15ms -> base RTT 30ms; grace to 36ms with beta=0.2.
  std::vector<FlowRewardInput> flows = {MakeFlow(50, 50, Milliseconds(35))};
  EXPECT_DOUBLE_EQ(RewardLatency(flows, Milliseconds(15), coeff.beta), 0.0);
}

TEST(RewardLatencyTest, PenalizesBeyondGrace) {
  RewardCoefficients coeff;
  std::vector<FlowRewardInput> flows = {MakeFlow(50, 50, Milliseconds(60))};
  EXPECT_GT(RewardLatency(flows, Milliseconds(15), coeff.beta), 0.0);
}

TEST(RewardLatencyTest, ScalesWithPacingRate) {
  RewardCoefficients coeff;
  std::vector<FlowRewardInput> slow = {MakeFlow(10, 10, Milliseconds(60))};
  std::vector<FlowRewardInput> fast = {MakeFlow(100, 100, Milliseconds(60))};
  EXPECT_GT(RewardLatency(fast, Milliseconds(15), coeff.beta),
            RewardLatency(slow, Milliseconds(15), coeff.beta));
}

TEST(RewardFairnessTest, ZeroIffEqual) {
  std::vector<FlowRewardInput> equal = {MakeFlow(30, 30), MakeFlow(30, 30), MakeFlow(30, 30)};
  EXPECT_DOUBLE_EQ(RewardFairness(equal), 0.0);
  std::vector<FlowRewardInput> unequal = {MakeFlow(60, 60), MakeFlow(20, 20)};
  EXPECT_GT(RewardFairness(unequal), 0.0);
}

TEST(RewardFairnessTest, UsesAveragedThroughputsNotInstantaneous) {
  // Instantaneous thr differs, averaged thr equal -> fairness term zero.
  std::vector<FlowRewardInput> flows = {MakeFlow(70, 50), MakeFlow(30, 50)};
  EXPECT_DOUBLE_EQ(RewardFairness(flows), 0.0);
}

TEST(RewardFairnessTest, SingleFlowIsFair) {
  std::vector<FlowRewardInput> flows = {MakeFlow(100, 100)};
  EXPECT_DOUBLE_EQ(RewardFairness(flows), 0.0);
}

TEST(RewardFairnessTest, MoreSensitiveThanJainNearEquality) {
  // The paper's Fig. 4 argument: as the throughput gap of two flows filling a
  // 100 Mbps link grows from 0 to 20, (1 - Jain) moves less than R_fair.
  auto pair = [](double gap) {
    return std::vector<FlowRewardInput>{MakeFlow(50 + gap / 2, 50 + gap / 2),
                                        MakeFlow(50 - gap / 2, 50 - gap / 2)};
  };
  const double rfair_delta = RewardFairness(pair(20)) - RewardFairness(pair(0));
  const std::vector<double> at0 = {50, 50};
  const std::vector<double> at20 = {60, 40};
  const double jain_delta = JainIndex(at0) - JainIndex(at20);
  EXPECT_GT(rfair_delta, jain_delta);
}

TEST(RewardFairnessTest, LinearInGapWhileJainSaturates) {
  auto rfair_at = [](double gap) {
    return RewardFairness(std::vector<FlowRewardInput>{MakeFlow(50 + gap / 2, 50 + gap / 2),
                                                       MakeFlow(50 - gap / 2, 50 - gap / 2)});
  };
  // R_fair is linear: f(20) ~= 2*f(10).
  EXPECT_NEAR(rfair_at(20) / rfair_at(10), 2.0, 1e-6);
  // Jain is quadratic near zero: the same ratio is ~4.
  const double j10 = 1.0 - JainIndex(std::vector<double>{55, 45});
  const double j20 = 1.0 - JainIndex(std::vector<double>{60, 40});
  EXPECT_NEAR(j20 / j10, 4.0, 0.2);
}

TEST(RewardStabilityTest, ZeroForConstantHistory) {
  std::vector<FlowRewardInput> flows = {MakeFlow(50, 50, Milliseconds(30), 0.0, 0.0)};
  EXPECT_DOUBLE_EQ(RewardStability(flows), 0.0);
  flows[0].stability = 0.2;
  EXPECT_DOUBLE_EQ(RewardStability(flows), 0.2);
}

TEST(ComputeRewardTest, BoundedToPlusMinusPointOne) {
  RewardCoefficients coeff;
  // Catastrophic loss drives the raw reward far negative; it must clamp.
  std::vector<FlowRewardInput> flows = {MakeFlow(1, 1, Milliseconds(500), 100.0)};
  const RewardBreakdown r = ComputeReward(flows, Mbps(100), Milliseconds(15), coeff);
  EXPECT_GE(r.total, -0.1);
  EXPECT_LE(r.total, 0.1);
}

TEST(ComputeRewardTest, GoodOperatingPointScoresPositive) {
  RewardCoefficients coeff;
  std::vector<FlowRewardInput> flows = {MakeFlow(50, 50, Milliseconds(32)),
                                        MakeFlow(50, 50, Milliseconds(32))};
  const RewardBreakdown r = ComputeReward(flows, Mbps(100), Milliseconds(15), coeff);
  EXPECT_GT(r.total, 0.05);
}

TEST(ComputeRewardTest, UnfairnessLowersReward) {
  RewardCoefficients coeff;
  std::vector<FlowRewardInput> fair = {MakeFlow(50, 50), MakeFlow(50, 50)};
  std::vector<FlowRewardInput> unfair = {MakeFlow(90, 90), MakeFlow(10, 10)};
  EXPECT_GT(ComputeReward(fair, Mbps(100), Milliseconds(15), coeff).total,
            ComputeReward(unfair, Mbps(100), Milliseconds(15), coeff).total);
}

TEST(ComputeRewardTest, HigherUtilizationRaisesReward) {
  RewardCoefficients coeff;
  std::vector<FlowRewardInput> low = {MakeFlow(20, 20), MakeFlow(20, 20)};
  std::vector<FlowRewardInput> high = {MakeFlow(50, 50), MakeFlow(50, 50)};
  EXPECT_GT(ComputeReward(high, Mbps(100), Milliseconds(15), coeff).total,
            ComputeReward(low, Mbps(100), Milliseconds(15), coeff).total);
}

// Property sweep over flow counts: reward components stay in sane ranges for
// random inputs (normalization invariant, §3.3 "all normalized").
class RewardRangeProperty : public ::testing::TestWithParam<int> {};

TEST_P(RewardRangeProperty, ComponentsAreBounded) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<FlowRewardInput> flows;
    const int n = GetParam();
    for (int i = 0; i < n; ++i) {
      const double thr = rng.Uniform(0.1, 200.0);
      FlowRewardInput f = MakeFlow(thr, rng.Uniform(0.1, 200.0),
                                   Milliseconds(rng.UniformInt(10, 500)),
                                   rng.Uniform(0.0, 0.2 * thr), rng.Uniform(0.0, 1.0));
      flows.push_back(f);
    }
    RewardCoefficients coeff;
    const RewardBreakdown r = ComputeReward(flows, Mbps(100), Milliseconds(15), coeff);
    EXPECT_GE(r.r_fair, 0.0);
    EXPECT_LE(r.r_fair, 1.0);  // normalized stddev of a nonneg vector <= 1
    EXPECT_GE(r.r_loss, 0.0);
    EXPECT_GE(r.r_stab, 0.0);
    EXPECT_GE(r.total, -0.1);
    EXPECT_LE(r.total, 0.1);
  }
}

INSTANTIATE_TEST_SUITE_P(FlowCounts, RewardRangeProperty, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace astraea
