// Scenario-universe harness tests (bench/harness/scenario_universe.h): the
// three workload families must be deterministic and worker-invariant under
// the PR-6 shard protocol, incast completion semantics must hold, and the
// adversarial ingredients (churn, blasts) must actually hurt.

#include <gtest/gtest.h>

#include <string>

#include "bench/harness/metrics.h"
#include "bench/harness/scenario_universe.h"
#include "src/sim/invariants.h"

namespace astraea {
namespace {

std::string TracesDir() { return std::string(ASTRAEA_SOURCE_DIR) + "/traces"; }

ShardedUniverseConfig SmallConfig(UniverseFamily family) {
  ShardedUniverseConfig config;
  config.family = family;
  config.shards = 3;
  config.incast.fan_in = 6;
  config.incast.waves = 1;
  config.incast.request_bytes = 24 * 1024;
  config.trace_driven.trace_path = TracesDir() + "/cellular.trace";
  config.trace_driven.scheme = "cubic";
  config.trace_driven.duration = Seconds(1.0);
  config.adversarial.bandwidth = Mbps(20);
  config.adversarial.duration = Seconds(2.0);
  config.adversarial.blast_period = Seconds(1.0);
  config.adversarial.blast_on = Milliseconds(300);
  return config;
}

class UniverseWorkerInvarianceTest : public ::testing::TestWithParam<UniverseFamily> {};

// The family's sharded aggregate is bit-identical at 1 and N workers, with
// every invariant check fatal. This is the regression gate the bench and CI
// reassert; here it runs on each family's smallest config.
TEST_P(UniverseWorkerInvarianceTest, OneVsManyWorkersBitIdentical) {
  invariants::ScopedMode fatal(invariants::Mode::kFatal);
  ShardedUniverseConfig config = SmallConfig(GetParam());
  config.workers = 1;
  const ShardedRunResult serial = RunShardedUniverse(config);
  config.workers = 4;
  const ShardedRunResult parallel = RunShardedUniverse(config);

  EXPECT_EQ(serial.fingerprint, parallel.fingerprint);
  EXPECT_EQ(serial.events_executed, parallel.events_executed);
  EXPECT_EQ(serial.bytes_acked, parallel.bytes_acked);
  EXPECT_EQ(serial.bytes_lost, parallel.bytes_lost);
  ASSERT_EQ(serial.shards.size(), parallel.shards.size());
  for (size_t i = 0; i < serial.shards.size(); ++i) {
    EXPECT_EQ(serial.shards[i].fingerprint, parallel.shards[i].fingerprint) << "shard " << i;
  }
  // Shards are genuinely distinct scenarios (distinct derived seeds).
  EXPECT_NE(serial.shards[0].fingerprint, serial.shards[1].fingerprint);
  // And the whole thing is reproducible run to run.
  config.workers = 1;
  EXPECT_EQ(RunShardedUniverse(config).fingerprint, serial.fingerprint);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, UniverseWorkerInvarianceTest,
                         ::testing::Values(UniverseFamily::kIncast,
                                           UniverseFamily::kTraceDriven,
                                           UniverseFamily::kAdversarial),
                         [](const ::testing::TestParamInfo<UniverseFamily>& p) {
                           switch (p.param) {
                             case UniverseFamily::kIncast:
                               return "Incast";
                             case UniverseFamily::kTraceDriven:
                               return "TraceDriven";
                             case UniverseFamily::kAdversarial:
                               return "Adversarial";
                           }
                           return "Unknown";
                         });

TEST(IncastTest, RequestsCompleteWithBudgetedBytes) {
  invariants::ScopedMode fatal(invariants::Mode::kFatal);
  IncastConfig config;
  config.fan_in = 8;
  config.waves = 2;
  config.request_bytes = 32 * 1024;
  config.scheme = "cubic";
  config.ecn = false;
  config.seed = 21;
  const IncastResult result = RunIncast(config);
  EXPECT_EQ(result.requests, 16u);
  // The generous drain horizon lets every request finish on this config.
  EXPECT_EQ(result.completed, result.requests);
  EXPECT_GT(result.p95_fct_ms, 0.0);
  EXPECT_GE(result.max_fct_ms, result.p95_fct_ms);

  // Completion semantics: a completed flow sent exactly its budget, has
  // nothing in flight, and its completion time is inside the horizon.
  auto scenario = BuildIncast(config);
  scenario->Run(IncastHorizon(config));
  const Network& net = scenario->network();
  for (int flow = 0; flow < static_cast<int>(net.flow_count()); ++flow) {
    const FlowStats& stats = net.flow_stats(flow);
    ASSERT_GE(stats.completed_at, 0) << "flow " << flow;
    EXPECT_GE(stats.completed_at, net.flow_spec(flow).start);
    EXPECT_LE(stats.completed_at, IncastHorizon(config));
    EXPECT_GE(stats.bytes_sent, config.request_bytes);
    EXPECT_GE(stats.bytes_acked, config.request_bytes);
  }
}

TEST(IncastTest, MoreFanInMeansMoreCollapse) {
  IncastConfig small;
  small.fan_in = 4;
  small.waves = 1;
  small.scheme = "cubic";
  small.ecn = false;
  small.seed = 8;
  IncastConfig big = small;
  big.fan_in = 48;
  const IncastResult r_small = RunIncast(small);
  const IncastResult r_big = RunIncast(big);
  // Heavier fan-in on the same shallow buffer loses more and finishes later.
  EXPECT_GT(r_big.metrics.loss_ratio, r_small.metrics.loss_ratio);
  EXPECT_GT(r_big.p95_fct_ms, r_small.p95_fct_ms);
}

TEST(AdversarialTest, BlastInflatesForegroundDelay) {
  AdversarialConfig calm;
  calm.bandwidth = Mbps(30);
  calm.duration = Seconds(4.0);
  calm.churn_slots = 0;         // isolate the blaster's effect
  calm.blast_fraction = 0.0;
  calm.seed = 33;
  AdversarialConfig stormy = calm;
  stormy.blast_fraction = 0.8;
  stormy.blast_period = Seconds(2.0);
  stormy.blast_on = Seconds(1.0);

  const AdversarialResult without = RunAdversarial(calm);
  const AdversarialResult with = RunAdversarial(stormy);
  EXPECT_EQ(without.blast_share, 0.0);
  EXPECT_GT(with.blast_share, 0.0);
  EXPECT_GT(with.metrics.p95_delay_ms, without.metrics.p95_delay_ms);
  EXPECT_LT(with.metrics.goodput_mbps, without.metrics.goodput_mbps);
}

TEST(AdversarialTest, ChurnScheduleIsSeedDeterministic) {
  AdversarialConfig config;
  config.bandwidth = Mbps(20);
  config.duration = Seconds(2.0);
  config.seed = 17;
  auto a = BuildAdversarial(config);
  auto b = BuildAdversarial(config);
  ASSERT_EQ(a->network().flow_count(), b->network().flow_count());
  for (size_t i = 0; i < a->network().flow_count(); ++i) {
    const int id = static_cast<int>(i);
    EXPECT_EQ(a->network().flow_spec(id).start, b->network().flow_spec(id).start) << i;
    EXPECT_EQ(a->network().flow_spec(id).duration, b->network().flow_spec(id).duration) << i;
  }
  // A different seed reshuffles the churn schedule.
  config.seed = 18;
  auto c = BuildAdversarial(config);
  bool any_diff = c->network().flow_count() != a->network().flow_count();
  for (size_t i = 0; !any_diff && i < a->network().flow_count(); ++i) {
    const int id = static_cast<int>(i);
    any_diff = a->network().flow_spec(id).start != c->network().flow_spec(id).start;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TraceDrivenTest, InMemoryAndFileTraceBitIdentical) {
  // Loading the bundled capture through the file path and pre-building the
  // identical RateTrace in memory must produce fingerprint-identical runs —
  // the bit-identity contract of the --trace modes.
  TraceDrivenConfig by_path;
  by_path.trace_path = TracesDir() + "/cellular.trace";
  by_path.scheme = "cubic";
  by_path.duration = Seconds(1.0);
  by_path.seed = 6;
  TraceDrivenConfig by_trace = by_path;
  by_trace.trace_path.clear();
  by_trace.trace = std::make_shared<RateTrace>(
      ToRateTrace(LoadLinkRateTraceFile(TracesDir() + "/cellular.trace")));
  const TraceDrivenResult a = RunTraceDriven(by_path);
  const TraceDrivenResult b = RunTraceDriven(by_trace);
  EXPECT_EQ(a.metrics.fingerprint, b.metrics.fingerprint);
  EXPECT_GT(a.metrics.utilization, 0.0);
}

}  // namespace
}  // namespace astraea
