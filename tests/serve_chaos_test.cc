// Chaos soak for the self-healing serving stack: a supervised server is
// crashed, corrupted and stalled on a seeded schedule while reconnecting
// clients keep making decisions. The invariants under test are the PR's
// acceptance bar:
//   - no decision ever exceeds its budget (rpc_timeout + one bounded
//     reconnect probe) — clients degrade, they never hang;
//   - clients re-attach after every restart (reconnects observed);
//   - once the storm ends, decisions return to being *served* (steady-state
//     fallback rate decays to zero).
// The soak length defaults to a few seconds for the normal test suite;
// ASTRAEA_CHAOS_SOAK_SECONDS stretches it for the CI chaos job.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/policy.h"
#include "src/ipc/shm_ring.h"
#include "src/nn/mlp.h"
#include "src/serve/inference_server.h"
#include "src/serve/remote_policy.h"
#include "src/serve/supervisor.h"
#include "src/util/chaos.h"
#include "src/util/rng.h"
#include "src/util/serialization.h"

namespace astraea {
namespace serve {
namespace {

constexpr int kDim = 8;
// Outside the valid action range [-1, 1]: a decision with this value is
// unmistakably the fallback, never a served (clamped) action.
constexpr double kFallbackValue = 2.0;

std::string UniquePath(const char* tag) {
  static std::atomic<int> counter{0};
  return "/tmp/astraea_chaos_test_" + std::to_string(getpid()) + "_" + tag + "_" +
         std::to_string(counter.fetch_add(1));
}

std::string WriteModel(const char* tag, uint64_t seed) {
  Rng rng(seed);
  const Mlp model({kDim, 16, 1}, OutputActivation::kTanh, &rng);
  const std::string path = UniquePath(tag);
  BinaryWriter writer(path);
  model.Save(&writer);
  writer.Flush();
  return path;
}

class ConstantPolicy : public Policy {
 public:
  explicit ConstantPolicy(double value) : value_(value) {}
  double Act(const StateView&) const override { return value_; }
  std::string name() const override { return "constant"; }

 private:
  double value_;
};

TEST(SupervisorTest, RestartsCrashingChildUntilItExitsCleanly) {
  SupervisorConfig config;
  config.restart_backoff = {Milliseconds(1), Milliseconds(20), 2.0, 0.25};
  config.healthy_uptime = Milliseconds(1);
  // The child crashes while the supervisor is young and exits cleanly once
  // ~50ms have passed — elapsed time is the only state that survives the
  // fork boundary.
  Supervisor supervisor(config, [](TimeNs elapsed) { return elapsed < Milliseconds(50) ? 3 : 0; });
  EXPECT_EQ(supervisor.Run(), 0);
  EXPECT_GE(supervisor.restarts(), 1u);
}

TEST(SupervisorTest, RestartBudgetGivesUpWithChildStatus) {
  SupervisorConfig config;
  config.restart_backoff = {Milliseconds(1), Milliseconds(5), 2.0, 0.25};
  config.max_restarts = 2;
  Supervisor supervisor(config, [](TimeNs) { return 7; });
  EXPECT_EQ(supervisor.Run(), 7);
  EXPECT_EQ(supervisor.restarts(), 2u);
}

TEST(SupervisorTest, StopTerminatesARunningChildPromptly) {
  SupervisorConfig config;
  Supervisor supervisor(config, [](TimeNs) {
    // A child that never exits on its own; only SIGTERM ends it.
    while (true) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return 0;
  });
  std::thread runner([&] { EXPECT_EQ(supervisor.Run(), 0); });
  const TimeNs deadline = ipc::MonotonicNowNs() + Seconds(10.0);
  while (supervisor.child_pid() <= 0 && ipc::MonotonicNowNs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(supervisor.child_pid(), 0);
  const TimeNs stop_start = ipc::MonotonicNowNs();
  supervisor.Stop();
  runner.join();
  EXPECT_LT(ipc::MonotonicNowNs() - stop_start, Seconds(5.0));
  EXPECT_EQ(supervisor.restarts(), 0u);
}

// Self-healing without a supervisor in the picture: a policy created when no
// server exists serves from its fallback, then attaches by itself when a
// server appears, and re-attaches after that server is replaced.
TEST(ReconnectTest, PolicyAttachesAndReattachesAcrossServerLifetimes) {
  const std::string model_path = WriteModel("reconnect.ckpt", 11);
  const std::string socket_path = UniquePath("reconnect.sock");

  ReconnectConfig reconnect;
  reconnect.client.socket_path = socket_path;
  reconnect.client.rpc_timeout = Milliseconds(100);
  reconnect.client.connect_timeout = Milliseconds(200);
  reconnect.backoff = {Milliseconds(1), Milliseconds(50), 2.0, 0.25};
  reconnect.seed = 5;
  RemotePolicy policy(nullptr, std::make_shared<ConstantPolicy>(kFallbackValue), reconnect);

  const std::vector<float> state(kDim, 0.1f);
  StateView view;
  view.state_vector = state;
  EXPECT_EQ(policy.Act(view), kFallbackValue);  // no server yet

  InferenceServerConfig config;
  config.socket_path = socket_path;
  config.model_path = model_path;

  auto wait_until_served = [&]() -> bool {
    const TimeNs deadline = ipc::MonotonicNowNs() + Seconds(20.0);
    while (ipc::MonotonicNowNs() < deadline) {
      if (policy.Act(view) != kFallbackValue) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
  };

  {
    InferenceServer server(config);
    std::thread serving([&] { server.Run(); });
    EXPECT_TRUE(wait_until_served()) << "policy never attached to the first server";
    EXPECT_GE(policy.reconnects(), 1u);
    server.Stop();
    serving.join();
  }
  // Server gone: decisions degrade to the fallback again (first Act burns the
  // death-detection timeout, later ones are free), then a replacement server
  // on the same socket gets picked up by the probe schedule.
  const uint64_t attaches_before = policy.reconnects();
  const TimeNs degrade_deadline = ipc::MonotonicNowNs() + Seconds(20.0);
  while (policy.Act(view) != kFallbackValue && ipc::MonotonicNowNs() < degrade_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(policy.Act(view), kFallbackValue);
  {
    InferenceServer server(config);
    std::thread serving([&] { server.Run(); });
    EXPECT_TRUE(wait_until_served()) << "policy never re-attached to the replacement server";
    EXPECT_GT(policy.reconnects(), attaches_before);
    server.Stop();
    serving.join();
  }
  std::remove(model_path.c_str());
}

// The headline soak: a supervised serving process is killed, corrupted and
// stalled by a seeded chaos storm while client threads keep deciding.
TEST(ServeChaosTest, SoakUnderCrashStormNeverBlowsADecisionBudget) {
  const std::string model_path = WriteModel("soak.ckpt", 23);
  const std::string socket_path = UniquePath("soak.sock");

  double soak_seconds = 4.0;
  if (const char* env = std::getenv("ASTRAEA_CHAOS_SOAK_SECONDS")) {
    soak_seconds = std::max(1.0, std::atof(env));
  }
  const TimeNs soak = Seconds(soak_seconds);
  // The storm occupies the first ~70% of the soak; the tail is quiet so
  // steady-state recovery can be asserted.
  const chaos::ChaosSchedule storm =
      chaos::ChaosSchedule::RandomServeStorm(42, static_cast<TimeNs>(soak * 7 / 10),
                                             Milliseconds(400));
  ASSERT_FALSE(storm.empty());

  SupervisorConfig sup_config;
  sup_config.restart_backoff = {Milliseconds(10), Milliseconds(200), 2.0, 0.25};
  sup_config.healthy_uptime = Seconds(1.0);
  sup_config.seed = 7;
  Supervisor supervisor(sup_config, [&](TimeNs elapsed) {
    try {
      InferenceServerConfig config;
      config.socket_path = socket_path;
      config.model_path = model_path;
      InferenceServer server(config);
      // Resume the storm mid-timeline: a restarted child must not replay
      // events that already fired in a previous incarnation.
      chaos::ChaosRunner runner(storm, elapsed);
      server.Run();  // exits via chaos crash (_exit) or supervisor SIGTERM
    } catch (const std::exception&) {
      return 1;
    }
    return 0;
  });
  std::thread sup_thread([&] { supervisor.Run(); });

  const TimeNs rpc_timeout = Milliseconds(50);
  const TimeNs connect_timeout = Milliseconds(150);
  // One decision may pay a request (bounded by rpc_timeout) plus one
  // reconnect probe (bounded by connect_timeout); the slack absorbs scheduler
  // noise under sanitizers on loaded CI machines.
  const TimeNs decision_budget = rpc_timeout + connect_timeout + Milliseconds(500);

  constexpr int kClients = 4;
  std::atomic<uint64_t> total_decisions{0};
  std::atomic<uint64_t> budget_violations{0};
  std::vector<std::unique_ptr<RemotePolicy>> policies;
  for (int c = 0; c < kClients; ++c) {
    ReconnectConfig reconnect;
    reconnect.client.socket_path = socket_path;
    reconnect.client.rpc_timeout = rpc_timeout;
    reconnect.client.connect_timeout = connect_timeout;
    reconnect.backoff = {Milliseconds(2), Milliseconds(100), 2.0, 0.25};
    reconnect.seed = 1000 + static_cast<uint64_t>(c);
    policies.push_back(std::make_unique<RemotePolicy>(
        nullptr, std::make_shared<ConstantPolicy>(kFallbackValue), reconnect));
  }

  const TimeNs start = ipc::MonotonicNowNs();
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(500 + static_cast<uint64_t>(c));
      std::vector<float> state(kDim);
      StateView view;
      view.state_vector = state;
      while (ipc::MonotonicNowNs() < start + soak) {
        for (float& v : state) {
          v = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
        }
        const TimeNs t0 = ipc::MonotonicNowNs();
        (void)policies[static_cast<size_t>(c)]->Act(view);
        const TimeNs dt = ipc::MonotonicNowNs() - t0;
        total_decisions.fetch_add(1);
        if (dt > decision_budget) {
          budget_violations.fetch_add(1);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  // Post-storm settle: with the chaos disarmed and the server supervised,
  // decisions must return to *served* (not fallback) for every client.
  uint64_t settled = 0;
  const TimeNs settle_deadline = ipc::MonotonicNowNs() + Seconds(30.0);
  for (int c = 0; c < kClients; ++c) {
    std::vector<float> state(kDim, 0.25f);
    StateView view;
    view.state_vector = state;
    while (ipc::MonotonicNowNs() < settle_deadline) {
      if (policies[static_cast<size_t>(c)]->Act(view) != kFallbackValue) {
        ++settled;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  supervisor.Stop();
  sup_thread.join();

  EXPECT_GT(total_decisions.load(), 0u);
  EXPECT_EQ(budget_violations.load(), 0u)
      << "a decision exceeded rpc_timeout + connect_timeout + slack during the storm";
  EXPECT_EQ(settled, static_cast<uint64_t>(kClients))
      << "a client never returned to served decisions after the storm";
  // The storm's first event is always a crash, so at least one restart and at
  // least one client re-attach must have been observed.
  EXPECT_GE(supervisor.restarts(), 1u);
  uint64_t total_reconnects = 0;
  for (const auto& policy : policies) {
    EXPECT_GE(policy->reconnects(), 1u) << "a client never attached at all";
    total_reconnects += policy->reconnects();
  }
  EXPECT_GE(total_reconnects, static_cast<uint64_t>(kClients) + 1)
      << "no client ever *re*-attached after a crash";
  std::remove(model_path.c_str());
}

}  // namespace
}  // namespace serve
}  // namespace astraea
