// End-to-end tests for the out-of-process inference serving subsystem
// (src/serve/): served decisions must match local inference, batching must
// work across many clients, and every failure mode — no server, server
// crash mid-batch, corrupted responses, poisoned rings — must resolve as a
// graceful fallback within the RPC deadline, never a hang or crash.

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/policy.h"
#include "src/ipc/shm_ring.h"
#include "src/ipc/uds.h"
#include "src/nn/mlp.h"
#include "src/serve/inference_server.h"
#include "src/serve/remote_policy.h"
#include "src/serve/serve_protocol.h"
#include "src/util/checkpoint.h"
#include "src/util/failpoint.h"
#include "src/util/metrics.h"
#include "src/util/rng.h"
#include "src/util/serialization.h"

namespace astraea {
namespace serve {
namespace {

constexpr int kDim = 8;

std::string UniquePath(const char* tag) {
  static std::atomic<int> counter{0};
  return "/tmp/astraea_serve_test_" + std::to_string(getpid()) + "_" + tag + "_" +
         std::to_string(counter.fetch_add(1));
}

Mlp MakeModel(uint64_t seed) {
  Rng rng(seed);
  return Mlp({kDim, 16, 1}, OutputActivation::kTanh, &rng);
}

void WriteRawModel(const Mlp& model, const std::string& path) {
  BinaryWriter writer(path);
  model.Save(&writer);
  writer.Flush();
}

std::vector<float> RandomState(Rng* rng) {
  std::vector<float> state(kDim);
  for (float& v : state) {
    v = static_cast<float>(rng->Uniform() * 2.0 - 1.0);
  }
  return state;
}

// A fallback policy whose output is unmistakable in assertions.
class ConstantPolicy : public Policy {
 public:
  explicit ConstantPolicy(double value) : value_(value) {}
  double Act(const StateView&) const override { return value_; }
  std::string name() const override { return "constant"; }

 private:
  double value_;
};

// Spins up an InferenceServer on its own thread and tears it down cleanly.
class ServerFixture {
 public:
  explicit ServerFixture(InferenceServerConfig config)
      : server_(std::move(config)), thread_([this] { server_.Run(); }) {}
  ~ServerFixture() {
    server_.Stop();
    thread_.join();
  }
  InferenceServer& server() { return server_; }

 private:
  InferenceServer server_;
  std::thread thread_;
};

std::unique_ptr<ServeClient> ConnectOrDie(const std::string& socket, TimeNs rpc_timeout) {
  ServeClientConfig config;
  config.socket_path = socket;
  config.rpc_timeout = rpc_timeout;
  // The server binds its socket in the constructor, but the handshake is
  // completed by the serving loop — allow it a moment to come around.
  const TimeNs deadline = ipc::MonotonicNowNs() + Seconds(10.0);
  while (true) {
    std::unique_ptr<ServeClient> client = ServeClient::Connect(config);
    if (client != nullptr) {
      return client;
    }
    if (ipc::MonotonicNowNs() >= deadline) {
      return nullptr;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

TEST(LoadActorFileTest, AcceptsRawStreamAndCheckpointContainer) {
  const Mlp model = MakeModel(7);
  const std::string raw_path = UniquePath("raw.ckpt");
  WriteRawModel(model, raw_path);
  const Mlp raw = LoadActorFile(raw_path);
  EXPECT_EQ(raw.input_size(), kDim);

  const std::string container_path = UniquePath("container.ckpt");
  {
    CheckpointWriter writer(container_path);
    model.Save(writer.payload());
    writer.Commit();
  }
  const Mlp boxed = LoadActorFile(container_path);
  EXPECT_EQ(boxed.input_size(), kDim);

  // Identical parameters either way: same inference result.
  Rng rng(3);
  const std::vector<float> state = RandomState(&rng);
  EXPECT_EQ(raw.Infer(state)[0], boxed.Infer(state)[0]);
  std::remove(raw_path.c_str());
  std::remove(container_path.c_str());
}

TEST(LoadActorFileTest, CorruptFilesThrowInsteadOfAllocating) {
  EXPECT_THROW(LoadActorFile(UniquePath("missing.ckpt")), SerializationError);

  // A checkpoint with plausible magic but absurd layer sizes (the shape of a
  // stale or bit-rotted file) must be rejected by validation, not die in a
  // multi-gigabyte allocation.
  const std::string path = UniquePath("hostile.ckpt");
  {
    BinaryWriter writer(path);
    writer.WriteU32(0x41534D4C);  // "ASML" magic
    writer.WriteU32(1);           // version
    writer.WriteU32(1);           // activation
    writer.WriteU64(5);           // ndims
    writer.WriteU32(40);
    writer.WriteU32(256);
    writer.WriteU32(1u << 30);  // hostile layer size
    writer.WriteU32(1u << 24);
    writer.WriteU32(1);
    writer.Flush();
  }
  EXPECT_THROW(LoadActorFile(path), SerializationError);
  std::remove(path.c_str());
}

TEST(ServeTest, ServedDecisionsMatchLocalInference) {
  const Mlp model = MakeModel(11);
  const std::string model_path = UniquePath("parity.ckpt");
  WriteRawModel(model, model_path);

  InferenceServerConfig config;
  config.socket_path = UniquePath("parity.sock");
  config.model_path = model_path;
  config.batch_window = Microseconds(200);
  ServerFixture fixture(config);

  std::unique_ptr<ServeClient> client = ConnectOrDie(config.socket_path, Seconds(2.0));
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->model_input_dim(), kDim);

  Rng rng(5);
  for (int i = 0; i < 64; ++i) {
    const std::vector<float> state = RandomState(&rng);
    const std::optional<double> served = client->Request(state);
    ASSERT_TRUE(served.has_value()) << "request " << i;
    const float local = model.Infer(state)[0];
    EXPECT_NEAR(*served, static_cast<double>(local), 1e-6) << "request " << i;
  }
  EXPECT_TRUE(client->healthy());
  const TimeNs deadline = ipc::MonotonicNowNs() + Seconds(10.0);
  while (fixture.server().served_total() < 64u && ipc::MonotonicNowNs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(fixture.server().served_total(), 64u);
  std::remove(model_path.c_str());
}

TEST(ServeTest, ManyConcurrentClientsAllServedCorrectly) {
  const Mlp model = MakeModel(13);
  const std::string model_path = UniquePath("multi.ckpt");
  WriteRawModel(model, model_path);

  InferenceServerConfig config;
  config.socket_path = UniquePath("multi.sock");
  config.model_path = model_path;
  ServerFixture fixture(config);

  constexpr int kClients = 4;
  constexpr int kRequests = 100;
  std::atomic<int> failures{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      std::unique_ptr<ServeClient> client = ConnectOrDie(config.socket_path, Seconds(2.0));
      if (client == nullptr) {
        failures.fetch_add(kRequests);
        return;
      }
      // Mlp::Infer uses mutable scratch (single-thread only): each thread
      // rebuilds its own reference model from the shared seed.
      const Mlp model = MakeModel(13);
      Rng rng(100 + static_cast<uint64_t>(c));
      for (int i = 0; i < kRequests; ++i) {
        const std::vector<float> state = RandomState(&rng);
        const std::optional<double> served = client->Request(state);
        if (!served.has_value()) {
          failures.fetch_add(1);
          continue;
        }
        if (std::abs(*served - static_cast<double>(model.Infer(state)[0])) > 1e-6) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  // Clients observe their responses slightly before the server's counter is
  // bumped at the end of the flush; give the final batch a moment to settle.
  const uint64_t expected = static_cast<uint64_t>(kClients) * static_cast<uint64_t>(kRequests);
  const TimeNs deadline = ipc::MonotonicNowNs() + Seconds(10.0);
  while (fixture.server().served_total() < expected && ipc::MonotonicNowNs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(fixture.server().served_total(), expected);
  std::remove(model_path.c_str());
}

TEST(ServeTest, WrongDimensionRequestIsRejectedNotServed) {
  const Mlp model = MakeModel(17);
  const std::string model_path = UniquePath("dim.ckpt");
  WriteRawModel(model, model_path);

  InferenceServerConfig config;
  config.socket_path = UniquePath("dim.sock");
  config.model_path = model_path;
  ServerFixture fixture(config);

  std::unique_ptr<ServeClient> client = ConnectOrDie(config.socket_path, Seconds(2.0));
  ASSERT_NE(client, nullptr);
  const std::vector<float> short_state(kDim - 3, 0.5f);
  EXPECT_FALSE(client->Request(short_state).has_value());
  // A per-request rejection is not a server death: the client stays healthy
  // and the next well-formed request succeeds.
  EXPECT_TRUE(client->healthy());
  const std::vector<float> good_state(kDim, 0.5f);
  EXPECT_TRUE(client->Request(good_state).has_value());
  std::remove(model_path.c_str());
}

TEST(ServeTest, NoServerMeansImmediateFallback) {
  const auto fallback = std::make_shared<ConstantPolicy>(0.25);
  const std::shared_ptr<const Policy> policy =
      MakeServedPolicy(UniquePath("nowhere.sock"), Milliseconds(20), fallback);
  ASSERT_NE(policy, nullptr);
  const std::vector<float> state(kDim, 0.1f);
  StateView view;
  view.state_vector = state;
  EXPECT_EQ(policy->Act(view), 0.25);
}

// The headline robustness guarantee: kill the server at the worst possible
// moment — after it consumed requests from client rings, before any response
// — and every in-flight request on every client must resolve through the
// local fallback within its deadline. No hang, no crash, no exception.
TEST(ServeTest, ServerCrashMidBatchDegradesEveryClient) {
  const Mlp model = MakeModel(19);
  const std::string model_path = UniquePath("crash.ckpt");
  WriteRawModel(model, model_path);
  const std::string socket_path = UniquePath("crash.sock");

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    failpoint::Configure("serve.flush.mid_batch=1");
    InferenceServerConfig config;
    config.socket_path = socket_path;
    config.model_path = model_path;
    InferenceServer server(std::move(config));
    server.Run();  // crashes via the failpoint on the first flush
    _exit(0);      // unreachable if the failpoint fired
  }

  constexpr int kClients = 3;
  std::vector<std::unique_ptr<ServeClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(ConnectOrDie(socket_path, Milliseconds(300)));
    ASSERT_NE(clients.back(), nullptr) << "client " << c;
  }

  std::atomic<int> resolved{0};
  std::atomic<int> answered{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      const std::vector<float> state(kDim, 0.1f * static_cast<float>(c + 1));
      const TimeNs start = ipc::MonotonicNowNs();
      const std::optional<double> result = clients[c]->Request(state);
      const TimeNs elapsed = ipc::MonotonicNowNs() - start;
      if (elapsed < Seconds(5.0)) {
        resolved.fetch_add(1);  // bounded, deadline honored
      }
      if (result.has_value()) {
        answered.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), failpoint::kCrashExitCode) << "server did not die at failpoint";

  EXPECT_EQ(resolved.load(), kClients) << "a client stalled past its deadline";
  EXPECT_EQ(answered.load(), 0) << "no response should have been produced";

  // After the crash is observed (socket EOF), clients fail fast and a
  // RemotePolicy built on one routes every decision to the fallback.
  for (auto& client : clients) {
    EXPECT_FALSE(client->Request(std::vector<float>(kDim, 0.3f)).has_value());
    EXPECT_FALSE(client->healthy());
  }
  RemotePolicy policy(std::move(clients[0]), std::make_shared<ConstantPolicy>(-0.5));
  const std::vector<float> state(kDim, 0.2f);
  StateView view;
  view.state_vector = state;
  EXPECT_EQ(policy.Act(view), -0.5);
  std::remove(model_path.c_str());
}

TEST(ServeTest, HotReloadUnderLoadKeepsEveryResponseValid) {
  const Mlp model_a = MakeModel(23);
  const Mlp model_b = MakeModel(29);
  const std::string model_path = UniquePath("reload.ckpt");
  WriteRawModel(model_a, model_path);

  InferenceServerConfig config;
  config.socket_path = UniquePath("reload.sock");
  config.model_path = model_path;
  ServerFixture fixture(config);

  std::unique_ptr<ServeClient> client = ConnectOrDie(config.socket_path, Seconds(2.0));
  ASSERT_NE(client, nullptr);

  // Continuous request load across the swap: every single response must be
  // served (no drops, no fallbacks) and be a valid finite action — matching
  // either the old or the new model, never garbage in between.
  std::atomic<bool> stop{false};
  std::atomic<int> load_failures{0};
  Rng rng(31);
  const std::vector<float> probe = RandomState(&rng);
  const double expect_a = static_cast<double>(model_a.Infer(probe)[0]);
  const double expect_b = static_cast<double>(model_b.Infer(probe)[0]);
  ASSERT_GT(std::abs(expect_a - expect_b), 1e-9) << "models must be distinguishable";
  std::thread load([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::optional<double> served = client->Request(probe);
      const bool ok = served.has_value() && std::isfinite(*served) &&
                      *served >= -1.0 && *served <= 1.0 &&
                      (std::abs(*served - expect_a) < 1e-6 || std::abs(*served - expect_b) < 1e-6);
      if (!ok) {
        load_failures.fetch_add(1);
      }
    }
  });

  // Atomic model swap exactly as documented for astraea_serve: write the new
  // checkpoint beside the live one, rename over it, then signal a reload.
  const std::string tmp_path = model_path + ".next";
  WriteRawModel(model_b, tmp_path);
  ASSERT_EQ(std::rename(tmp_path.c_str(), model_path.c_str()), 0);
  fixture.server().RequestReload();
  const TimeNs deadline = ipc::MonotonicNowNs() + Seconds(10.0);
  while (fixture.server().reload_count() == 0 && ipc::MonotonicNowNs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(fixture.server().reload_count(), 1u) << "reload never happened";

  // Let some post-reload traffic through, then stop the load.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true, std::memory_order_release);
  load.join();
  EXPECT_EQ(load_failures.load(), 0);

  // After the reload every decision comes from the new model.
  const std::optional<double> served = client->Request(probe);
  ASSERT_TRUE(served.has_value());
  EXPECT_NEAR(*served, expect_b, 1e-6);

  // A failed reload (corrupt file) keeps the current actor serving.
  {
    BinaryWriter writer(model_path);
    writer.WriteU32(0xDEADBEEF);
    writer.Flush();
  }
  fixture.server().RequestReload();
  const TimeNs deadline2 = ipc::MonotonicNowNs() + Seconds(10.0);
  std::optional<double> after_bad;
  while (ipc::MonotonicNowNs() < deadline2) {
    after_bad = client->Request(probe);
    if (after_bad.has_value()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(after_bad.has_value());
  EXPECT_NEAR(*after_bad, expect_b, 1e-6);
  EXPECT_EQ(fixture.server().reload_count(), 1u);
  std::remove(model_path.c_str());
}

TEST(ServeTest, CorruptedResponseRecordTriggersFallback) {
  const Mlp model = MakeModel(37);
  const std::string model_path = UniquePath("corrupt.ckpt");
  WriteRawModel(model, model_path);

  InferenceServerConfig config;
  config.socket_path = UniquePath("corrupt.sock");
  config.model_path = model_path;
  ServerFixture fixture(config);

  std::unique_ptr<ServeClient> client = ConnectOrDie(config.socket_path, Seconds(2.0));
  ASSERT_NE(client, nullptr);

  // The failpoint's "throw" action makes the server damage exactly one
  // response CRC; the client must detect it and refuse the record.
  failpoint::Configure("serve.respond.corrupt=1:throw");
  const std::vector<float> state(kDim, 0.4f);
  EXPECT_FALSE(client->Request(state).has_value());
  failpoint::Clear();
  // A CRC failure means the shared region can no longer be trusted: the
  // client is permanently degraded to its fallback.
  EXPECT_FALSE(client->healthy());
  EXPECT_FALSE(client->Request(state).has_value());
  std::remove(model_path.c_str());
}

TEST(ServeTest, BitFlippedRingHeadersTimeOutSafely) {
  const Mlp model = MakeModel(41);
  const std::string model_path = UniquePath("poison.ckpt");
  WriteRawModel(model, model_path);

  InferenceServerConfig config;
  config.socket_path = UniquePath("poison.sock");
  config.model_path = model_path;
  ServerFixture fixture(config);

  std::unique_ptr<ServeClient> client = ConnectOrDie(config.socket_path, Milliseconds(100));
  ASSERT_NE(client, nullptr);

  // Poison every response slot's sequence header before sending anything:
  // the server's publishes will fail (dropped responses), the client sees
  // nothing, and the request must resolve as a timeout at its deadline —
  // never a crash, never an unbounded wait.
  ipc::ShmRegion* region = client->region_for_test();
  ASSERT_NE(region, nullptr);
  for (size_t i = 0; i < ipc::kRingSlots; ++i) {
    region->response.slots[i].seq.store(0xFFFF'FFFF'FFFF'0000ull + i,
                                        std::memory_order_relaxed);
  }
  const std::vector<float> state(kDim, 0.6f);
  const TimeNs start = ipc::MonotonicNowNs();
  EXPECT_FALSE(client->Request(state).has_value());
  EXPECT_LT(ipc::MonotonicNowNs() - start, Seconds(5.0));
  // The server itself survives and keeps serving other (healthy) clients.
  std::unique_ptr<ServeClient> healthy = ConnectOrDie(config.socket_path, Seconds(2.0));
  ASSERT_NE(healthy, nullptr);
  EXPECT_TRUE(healthy->Request(state).has_value());
  std::remove(model_path.c_str());
}

// Open descriptors in this process — a leak detector for failed handshakes,
// which juggle a memfd, a socket, and a passed eventfd.
int CountOpenFds() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) {
    return -1;
  }
  int count = 0;
  while (readdir(dir) != nullptr) {
    ++count;
  }
  closedir(dir);
  return count;
}

// The server dies between accepting the connection and sending its hello-ack:
// Connect must return nullptr promptly (EOF, not a timeout burn) and close
// everything it allocated for the attempt.
TEST(ServeTest, ServerDeathMidHandshakeFailsConnectCleanly) {
  const std::string socket_path = UniquePath("midhs.sock");
  const int listen_fd = ipc::ListenUnix(socket_path);
  ASSERT_GE(listen_fd, 0);
  const int fds_before = CountOpenFds();

  std::thread killer([&] {
    int conn = -1;
    const TimeNs deadline = ipc::MonotonicNowNs() + Seconds(5.0);
    while (conn < 0 && ipc::MonotonicNowNs() < deadline) {
      conn = ipc::AcceptNonBlocking(listen_fd);
      if (conn < 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    if (conn >= 0) {
      close(conn);  // die without a ServerHello: the client sees EOF
    }
  });

  ServeClientConfig config;
  config.socket_path = socket_path;
  config.connect_timeout = Milliseconds(500);
  const TimeNs start = ipc::MonotonicNowNs();
  const std::unique_ptr<ServeClient> client = ServeClient::Connect(config);
  const TimeNs elapsed = ipc::MonotonicNowNs() - start;
  killer.join();
  EXPECT_EQ(client, nullptr);
  EXPECT_LT(elapsed, Seconds(5.0)) << "mid-handshake death must not hang Connect";
  EXPECT_EQ(CountOpenFds(), fds_before) << "failed handshake leaked a descriptor";
  close(listen_fd);
  std::remove(socket_path.c_str());
}

// A listener that accepts and then goes silent (wedged server): Connect must
// give up at connect_timeout, not block forever — and still leak nothing.
TEST(ServeTest, SilentServerBoundsConnectByTimeoutWithoutLeaks) {
  const std::string socket_path = UniquePath("silent.sock");
  const int listen_fd = ipc::ListenUnix(socket_path);
  ASSERT_GE(listen_fd, 0);
  const int fds_before = CountOpenFds();

  int held_conn = -1;
  std::thread holder([&] {
    const TimeNs deadline = ipc::MonotonicNowNs() + Seconds(5.0);
    while (held_conn < 0 && ipc::MonotonicNowNs() < deadline) {
      held_conn = ipc::AcceptNonBlocking(listen_fd);
      if (held_conn < 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });

  ServeClientConfig config;
  config.socket_path = socket_path;
  config.connect_timeout = Milliseconds(100);
  const TimeNs start = ipc::MonotonicNowNs();
  const std::unique_ptr<ServeClient> client = ServeClient::Connect(config);
  const TimeNs elapsed = ipc::MonotonicNowNs() - start;
  holder.join();
  EXPECT_EQ(client, nullptr);
  EXPECT_GE(elapsed, Milliseconds(100));
  EXPECT_LT(elapsed, Seconds(5.0));
  if (held_conn >= 0) {
    close(held_conn);
  }
  EXPECT_EQ(CountOpenFds(), fds_before);
  close(listen_fd);
  std::remove(socket_path.c_str());
}

// Admission control at the wire level: once the server has a flush-latency
// estimate, a request whose deadline is already unmeetable gets an immediate
// kRejected response instead of being served late or silently dropped.
TEST(ServeTest, PastDeadlineRequestIsShedWithRejection) {
  const Mlp model = MakeModel(43);
  const std::string model_path = UniquePath("shed.ckpt");
  WriteRawModel(model, model_path);

  InferenceServerConfig config;
  config.socket_path = UniquePath("shed.sock");
  config.model_path = model_path;
  ServerFixture fixture(config);

  std::unique_ptr<ServeClient> client = ConnectOrDie(config.socket_path, Seconds(2.0));
  ASSERT_NE(client, nullptr);
  // Prime the estimator: shedding only activates after a measured flush.
  ASSERT_TRUE(client->Request(std::vector<float>(kDim, 0.2f)).has_value());

  // Hand-craft a request whose absolute deadline is in the distant past and
  // push it straight onto the ring (the real client never constructs one).
  ipc::ShmRegion* region = client->region_for_test();
  ASSERT_NE(region, nullptr);
  RequestRecord req{};
  req.req_id = 1000000;
  req.deadline_ns = 1;
  req.state_dim = kDim;
  for (int i = 0; i < kDim; ++i) {
    req.state[i] = 0.3f;
  }
  req.crc = RequestCrc(req);
  ASSERT_TRUE(region->request.TryPush(&req, sizeof(req)));

  // No doorbell rung: the server still wakes from its bounded idle park.
  ResponseRecord resp{};
  bool got = false;
  const TimeNs deadline = ipc::MonotonicNowNs() + Seconds(10.0);
  while (!got && ipc::MonotonicNowNs() < deadline) {
    while (region->response.TryPop(&resp, sizeof(resp))) {
      if (resp.req_id == req.req_id) {
        got = true;
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(got) << "shed response never arrived";
  EXPECT_TRUE(ValidResponse(resp));
  EXPECT_EQ(resp.status, static_cast<uint32_t>(ResponseStatus::kRejected));
  EXPECT_GE(fixture.server().shed_count(), 1u);
  std::remove(model_path.c_str());
}

// RequestDetailed surfaces the failure mode; a shed comes back as kRejected
// and leaves the client healthy (load, not failure).
TEST(ServeTest, RejectionKeepsClientHealthy) {
  const Mlp model = MakeModel(47);
  const std::string model_path = UniquePath("rej.ckpt");
  WriteRawModel(model, model_path);

  InferenceServerConfig config;
  config.socket_path = UniquePath("rej.sock");
  config.model_path = model_path;
  ServerFixture fixture(config);

  std::unique_ptr<ServeClient> client = ConnectOrDie(config.socket_path, Seconds(2.0));
  ASSERT_NE(client, nullptr);
  const RequestResult ok = client->RequestDetailed(std::vector<float>(kDim, 0.1f));
  EXPECT_EQ(ok.outcome, RequestOutcome::kOk);
  EXPECT_TRUE(client->healthy());
  std::remove(model_path.c_str());
}

// Every serve.* / serve.client.* metric exists (zero-valued) the moment a
// server or client is constructed — a scrape taken before the first shed,
// reconnect or fallback still contains the key.
TEST(ServeTest, ServeMetricsPreRegisteredAtConstruction) {
  const Mlp model = MakeModel(53);
  const std::string model_path = UniquePath("metrics.ckpt");
  WriteRawModel(model, model_path);
  InferenceServerConfig config;
  config.socket_path = UniquePath("metrics.sock");
  config.model_path = model_path;
  InferenceServer server(std::move(config));  // construction alone registers

  const std::string json = MetricsRegistry::Global().ToJson();
  for (const char* name :
       {"serve.requests_total", "serve.shed_total", "serve.drain_rounds",
        "serve.est_batch_latency_seconds", "serve.supervisor.restarts_total",
        "serve.client.requests_total", "serve.client.rejected_total",
        "serve.client.reconnects_total", "serve.fallback_total"}) {
    EXPECT_NE(json.find(name), std::string::npos) << "missing pre-registered metric: " << name;
  }
  std::remove(model_path.c_str());
}

}  // namespace
}  // namespace serve
}  // namespace astraea
