#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "src/train/sharded_replay.h"

namespace astraea {
namespace {

// A recognizable transition: `tag` rides in the reward field.
Transition MakeT(float tag) {
  Transition t;
  t.local_state = {tag};
  t.global_state = {tag, tag};
  t.action = {0.0f};
  t.reward = tag;
  t.next_local_state = {tag};
  t.next_global_state = {tag, tag};
  return t;
}

std::vector<float> Rewards(const ShardedReplayBuffer& buf) {
  std::vector<float> out;
  for (size_t i = 0; i < buf.size(); ++i) {
    out.push_back(buf.at(i).reward);
  }
  return out;
}

TEST(ShardedReplayTest, DealsRoundRobinAcrossQueues) {
  // One shard, so at() exposes the arrival order directly.
  ShardedReplayBuffer buf(100, 1);
  std::vector<std::vector<Transition>> staged(3);
  staged[0] = {MakeT(10), MakeT(11)};
  staged[1] = {MakeT(20)};
  staged[2] = {MakeT(30), MakeT(31), MakeT(32)};
  buf.DrainInterleaved(&staged);

  // Round-robin from cursor 0: q0,q1,q2,q0,(q1 empty),q2,(q0 empty),
  // (q1 empty),q2.
  EXPECT_EQ(Rewards(buf), (std::vector<float>{10, 20, 30, 11, 31, 32}));
  EXPECT_EQ(buf.interleave_stalls(), 3u);
  EXPECT_EQ(buf.total_added(), 6u);
  for (const auto& q : staged) {
    EXPECT_TRUE(q.empty());  // consumed queues are cleared
  }
}

TEST(ShardedReplayTest, CursorPersistsAcrossDrains) {
  ShardedReplayBuffer buf(100, 1);
  std::vector<std::vector<Transition>> staged(2);
  staged[0] = {MakeT(1)};
  buf.DrainInterleaved(&staged);
  // One visit happened (queue 0), so the next drain starts at queue 1.
  EXPECT_EQ(buf.interleave_cursor(), 1u);

  staged[0] = {MakeT(2)};
  staged[1] = {MakeT(3)};
  buf.DrainInterleaved(&staged);
  EXPECT_EQ(Rewards(buf), (std::vector<float>{1, 3, 2}));
}

TEST(ShardedReplayTest, ShardSelectionFollowsGlobalSequence)
{
  ShardedReplayBuffer buf(100, 2);
  std::vector<std::vector<Transition>> staged(1);
  for (int i = 0; i < 6; ++i) {
    staged[0].push_back(MakeT(static_cast<float>(i)));
  }
  buf.DrainInterleaved(&staged);
  // Even global sequence numbers land in shard 0, odd in shard 1; at() walks
  // shard-major.
  EXPECT_EQ(buf.shard_size(0), 3u);
  EXPECT_EQ(buf.shard_size(1), 3u);
  EXPECT_EQ(Rewards(buf), (std::vector<float>{0, 2, 4, 1, 3, 5}));
}

TEST(ShardedReplayTest, InterleaveIsInvariantToHowWorkWasProduced) {
  // The same per-queue contents must produce the same buffer whether they
  // were staged in one big round or in several smaller ones with the same
  // per-round layout — the order depends only on queue contents + cursor.
  ShardedReplayBuffer once(64, 4);
  std::vector<std::vector<Transition>> staged(3);
  staged[0] = {MakeT(1), MakeT(2)};
  staged[1] = {MakeT(3), MakeT(4)};
  staged[2] = {MakeT(5), MakeT(6)};
  once.DrainInterleaved(&staged);

  ShardedReplayBuffer twice(64, 4);
  staged.assign(3, {});
  staged[0] = {MakeT(1)};
  staged[1] = {MakeT(3)};
  staged[2] = {MakeT(5)};
  twice.DrainInterleaved(&staged);
  staged[0] = {MakeT(2)};
  staged[1] = {MakeT(4)};
  staged[2] = {MakeT(6)};
  twice.DrainInterleaved(&staged);

  EXPECT_EQ(Rewards(once), Rewards(twice));
  EXPECT_EQ(once.interleave_cursor(), twice.interleave_cursor());
}

TEST(ShardedReplayTest, EvictionStaysPerShardRing) {
  // 4 slots over 2 shards = 2-entry rings; 6 adds overwrite the oldest entry
  // of each shard independently.
  ShardedReplayBuffer buf(4, 2);
  std::vector<std::vector<Transition>> staged(1);
  for (int i = 0; i < 6; ++i) {
    staged[0].push_back(MakeT(static_cast<float>(i)));
  }
  buf.DrainInterleaved(&staged);
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.total_added(), 6u);
  // Shard 0 saw 0,2,4 in a 2-ring -> {4,2}; shard 1 saw 1,3,5 -> {5,3}.
  EXPECT_EQ(Rewards(buf), (std::vector<float>{4, 2, 5, 3}));
}

TEST(ShardedReplayTest, SamplingMatchesSerialBufferDrawPattern) {
  // Same size, same Rng stream -> identical index draws as the serial
  // ReplayBuffer, so swapping the backing store cannot shift learner RNG.
  ShardedReplayBuffer sharded(100, 4);
  ReplayBuffer serial(100);
  std::vector<std::vector<Transition>> staged(1);
  for (int i = 0; i < 17; ++i) {
    staged[0].push_back(MakeT(static_cast<float>(i)));
    serial.Add(MakeT(static_cast<float>(i)));
  }
  sharded.DrainInterleaved(&staged);
  Rng a(99);
  Rng b(99);
  EXPECT_EQ(sharded.SampleIndices(32, &a), serial.SampleIndices(32, &b));
}

TEST(ShardedReplayTest, SaveLoadRoundTripsMidInterleaveState) {
  const std::string path = "/tmp/astraea_sharded_replay_test.bin";
  ShardedReplayBuffer buf(32, 4);
  std::vector<std::vector<Transition>> staged(3);
  // q0 gets 3, q1/q2 one each: the deal ends one visit into a rotation
  // (cursor 1) after two stalls — genuinely mid-interleave state.
  staged[0] = {MakeT(1), MakeT(2), MakeT(5)};
  staged[1] = {MakeT(3)};
  staged[2] = {MakeT(4)};
  buf.DrainInterleaved(&staged);
  ASSERT_EQ(buf.interleave_cursor(), 1u);
  ASSERT_EQ(buf.interleave_stalls(), 2u);

  {
    BinaryWriter w(path);
    buf.Save(&w);
  }
  ShardedReplayBuffer loaded(32, 4);
  {
    BinaryReader r(path);
    loaded.Load(&r);
  }
  EXPECT_EQ(Rewards(loaded), Rewards(buf));
  EXPECT_EQ(loaded.interleave_cursor(), buf.interleave_cursor());
  EXPECT_EQ(loaded.interleave_stalls(), buf.interleave_stalls());
  EXPECT_EQ(loaded.total_added(), buf.total_added());

  // Continuing from the loaded state must equal continuing the original.
  std::vector<std::vector<Transition>> more(3);
  more[1] = {MakeT(6), MakeT(7)};
  auto more_copy = more;
  buf.DrainInterleaved(&more);
  loaded.DrainInterleaved(&more_copy);
  EXPECT_EQ(Rewards(loaded), Rewards(buf));
  std::filesystem::remove(path);
}

TEST(ShardedReplayTest, LoadRejectsShardCountMismatch) {
  const std::string path = "/tmp/astraea_sharded_replay_mismatch.bin";
  ShardedReplayBuffer buf(32, 4);
  {
    BinaryWriter w(path);
    buf.Save(&w);
  }
  ShardedReplayBuffer other(32, 8);
  BinaryReader r(path);
  EXPECT_THROW(other.Load(&r), SerializationError);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace astraea
