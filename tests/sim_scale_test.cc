// Scale-out machinery: packet-pool hygiene across a full scenario, the
// sharded dumbbell runner's worker-count determinism, and the sim.pool.*
// gauges published for --metrics-out scrapes.

#include <gtest/gtest.h>

#include "bench/harness/scenario.h"
#include "src/util/metrics.h"
#include "src/util/thread_pool.h"

namespace astraea {
namespace {

// After every flow stops and the wire drains, each packet slot must be back
// on the freelist — a leak here would grow without bound at a million flows.
TEST(SimScaleTest, PacketPoolDrainsToZeroAfterQuiescence) {
  DumbbellConfig config;
  config.seed = 7;
  DumbbellScenario scenario(config);
  scenario.AddFlow("cubic", /*start=*/0, /*duration=*/Seconds(1.0));
  scenario.AddFlow("cubic", Milliseconds(100), Seconds(1.0));
  // Run well past the last stop: in-flight packets and retransmissions drain.
  scenario.Run(Seconds(3.0));
  PacketPool& pool = scenario.network().packet_pool();
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_GT(pool.recycled(), 0u);       // slots actually cycled through
  EXPECT_GT(pool.capacity(), 0u);
  // The pool never needed more slots than the path could physically hold
  // (cwnd-limited in-flight + bottleneck buffer), not one per packet sent.
  EXPECT_LT(pool.capacity(), pool.recycled());
}

// The sharded aggregate is a pure function of (seed stream, shard index):
// running the same config on 1 worker and on several must agree bit for bit,
// shard by shard.
TEST(SimScaleTest, ShardedRunIsWorkerCountInvariant) {
  ShardedDumbbellConfig config;
  config.scheme = "cubic";
  config.shards = 6;
  config.flows_per_shard = 5;
  config.flow_duration = Seconds(0.3);

  config.workers = 1;
  const ShardedRunResult serial = RunShardedDumbbell(config);
  config.workers = 4;
  const ShardedRunResult parallel = RunShardedDumbbell(config);

  ASSERT_EQ(serial.shards.size(), parallel.shards.size());
  for (size_t i = 0; i < serial.shards.size(); ++i) {
    EXPECT_EQ(serial.shards[i].fingerprint, parallel.shards[i].fingerprint) << "shard " << i;
    EXPECT_EQ(serial.shards[i].events_executed, parallel.shards[i].events_executed);
    EXPECT_EQ(serial.shards[i].bytes_acked, parallel.shards[i].bytes_acked);
    EXPECT_EQ(serial.shards[i].bytes_lost, parallel.shards[i].bytes_lost);
  }
  EXPECT_EQ(serial.fingerprint, parallel.fingerprint);
  EXPECT_EQ(serial.events_executed, parallel.events_executed);
  EXPECT_GT(serial.events_executed, 0u);
  EXPECT_GT(serial.bytes_acked, 0u);
}

// Shards must simulate distinct seeds: identical outcomes across shards would
// mean the derivation collapsed and the "N independent scenarios" claim is
// void.
TEST(SimScaleTest, ShardsAreDecorrelated) {
  ShardedDumbbellConfig config;
  config.scheme = "cubic";
  config.shards = 4;
  config.flows_per_shard = 3;
  config.flow_duration = Seconds(0.3);
  config.shard.random_loss = 0.01;  // give the RNG a visible role
  const ShardedRunResult result = RunShardedDumbbell(config);
  for (size_t i = 1; i < result.shards.size(); ++i) {
    EXPECT_NE(result.shards[0].fingerprint, result.shards[i].fingerprint) << "shard " << i;
  }
}

// Re-running one shard standalone reproduces exactly what the batched run
// recorded for it (the property the bench's resumable sharding relies on).
TEST(SimScaleTest, SingleShardRerunMatchesBatchedRun) {
  ShardedDumbbellConfig config;
  config.scheme = "cubic";
  config.shards = 3;
  config.flows_per_shard = 4;
  config.flow_duration = Seconds(0.3);
  const ShardedRunResult batched = RunShardedDumbbell(config);
  for (size_t i = 0; i < config.shards; ++i) {
    const ShardResult solo = RunDumbbellShard(config, i);
    EXPECT_EQ(solo.fingerprint, batched.shards[i].fingerprint) << "shard " << i;
    EXPECT_EQ(solo.events_executed, batched.shards[i].events_executed);
  }
}

// Network::Run publishes pool health into the global MetricsRegistry so
// --metrics-out scrapes include it without extra plumbing.
TEST(SimScaleTest, PoolGaugesPublishedAfterRun) {
  DumbbellConfig config;
  config.seed = 11;
  DumbbellScenario scenario(config);
  scenario.AddFlow("cubic", 0, Seconds(0.2));
  scenario.Run(Seconds(0.5));

  MetricsRegistry& metrics = MetricsRegistry::Global();
  EXPECT_GT(metrics.GetGauge("sim.pool.packets_capacity").Value(), 0.0);
  EXPECT_GT(metrics.GetGauge("sim.pool.packets_recycled_total").Value(), 0.0);
  EXPECT_GT(metrics.GetGauge("sim.pool.events_recycled_total").Value(), 0.0);
  EXPECT_GT(metrics.GetGauge("sim.pool.calendar_buckets").Value(), 0.0);
  EXPECT_EQ(metrics.GetGauge("sim.pool.packets_live").Value(), 0.0);
}

}  // namespace
}  // namespace astraea
