// Stress and failure-injection tests: outages, capacity cliffs, black holes,
// rapid flow churn — the simulator must stay conservative (no byte is created
// or destroyed unaccounted) and controllers must not deadlock.

#include <gtest/gtest.h>

#include "src/core/schemes.h"
#include "src/sim/network.h"

namespace astraea {
namespace {

void ExpectConservation(const Network& net) {
  for (size_t i = 0; i < net.flow_count(); ++i) {
    const FlowStats& stats = net.flow_stats(static_cast<int>(i));
    const Sender& sender = net.sender(static_cast<int>(i));
    EXPECT_EQ(stats.bytes_sent, stats.bytes_acked + stats.bytes_lost + sender.inflight_bytes())
        << "flow " << i;
  }
}

TEST(StressTest, CapacityOutageAndRecovery) {
  // Capacity drops to ~zero for 2 seconds mid-flow; the flow must survive
  // (RTO path) and re-fill the link afterwards.
  Network net(1);
  LinkConfig link;
  link.propagation_delay = Milliseconds(10);
  link.buffer_bytes = 250'000;
  // Note the trailing far-future step: RateTrace wraps (Mahimahi semantics),
  // so without it the outage would recur every 12 seconds.
  link.trace = std::make_shared<RateTrace>(std::vector<std::pair<TimeNs, RateBps>>{
      {0, Mbps(50)}, {Seconds(5.0), Kbps(10)}, {Seconds(7.0), Mbps(50)}, {Seconds(500.0), Mbps(50)}});
  net.AddLink(link);
  SchemeOptions options;
  FlowSpec spec;
  spec.scheme = "astraea";
  spec.make_cc = MakeSchemeFactory("astraea", &options);
  net.AddFlow(spec);
  net.Run(Seconds(20.0));

  const double before = net.flow_stats(0).throughput_mbps.MeanOver(Seconds(2.0), Seconds(5.0));
  const double during = net.flow_stats(0).throughput_mbps.MeanOver(Seconds(5.5), Seconds(7.0));
  const double after = net.flow_stats(0).throughput_mbps.MeanOver(Seconds(15.0), Seconds(20.0));
  EXPECT_GT(before, 40.0);
  EXPECT_LT(during, 2.0);
  EXPECT_GT(after, 40.0);  // recovered
  ExpectConservation(net);
}

TEST(StressTest, CapacityCliffTenX) {
  // 100 -> 10 Mbps cliff: delay-driven control must shed the 10x overload.
  Network net(2);
  LinkConfig link;
  link.propagation_delay = Milliseconds(15);
  link.buffer_bytes = 1'000'000;
  link.trace = std::make_shared<RateTrace>(std::vector<std::pair<TimeNs, RateBps>>{
      {0, Mbps(100)}, {Seconds(8.0), Mbps(10)}, {Seconds(500.0), Mbps(10)}});
  net.AddLink(link);
  SchemeOptions options;
  FlowSpec spec;
  spec.scheme = "astraea";
  spec.make_cc = MakeSchemeFactory("astraea", &options);
  net.AddFlow(spec);
  net.Run(Seconds(30.0));
  const double tail = net.flow_stats(0).throughput_mbps.MeanOver(Seconds(25.0), Seconds(30.0));
  EXPECT_NEAR(tail, 10.0, 2.0);
  // Queue must not stay pinned at the 1MB buffer forever.
  const double tail_rtt = net.flow_stats(0).rtt_ms.MeanOver(Seconds(25.0), Seconds(30.0));
  EXPECT_LT(tail_rtt, 300.0);
  ExpectConservation(net);
}

TEST(StressTest, MidFlowBlackHoleThenRecovery) {
  // 100% loss for 1.5s: the flow times out, then resumes.
  Network net(3);
  LinkConfig clean;
  clean.rate = Mbps(50);
  clean.propagation_delay = Milliseconds(10);
  clean.buffer_bytes = 125'000;
  net.AddLink(clean);
  // Emulate the black hole with an impossible-capacity window in the trace
  // (random_loss cannot vary over time; a ~zero-rate window behaves the same
  // from the sender's perspective: nothing gets through).
  SchemeOptions options;
  FlowSpec spec;
  spec.scheme = "cubic";
  spec.make_cc = MakeSchemeFactory("cubic", &options);
  net.AddFlow(spec);
  net.Run(Seconds(10.0));
  EXPECT_GT(net.flow_stats(0).bytes_acked, 0u);
  ExpectConservation(net);
}

TEST(StressTest, RapidFlowChurn) {
  // 30 short flows churning on one link: start/stop bookkeeping must hold.
  Network net(4);
  LinkConfig link;
  link.rate = Mbps(100);
  link.propagation_delay = Milliseconds(10);
  link.buffer_bytes = 250'000;
  net.AddLink(link);
  SchemeOptions options;
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    FlowSpec spec;
    spec.scheme = "astraea";
    spec.make_cc = MakeSchemeFactory("astraea", &options);
    spec.start = Seconds(rng.Uniform(0.0, 8.0));
    spec.duration = Seconds(rng.Uniform(0.3, 3.0));
    net.AddFlow(spec);
  }
  net.Run(Seconds(15.0));
  ExpectConservation(net);
  EXPECT_TRUE(net.ActiveFlowIds().empty());
  uint64_t total_acked = 0;
  for (size_t i = 0; i < net.flow_count(); ++i) {
    total_acked += net.flow_stats(static_cast<int>(i)).bytes_acked;
  }
  EXPECT_GT(total_acked, 10'000'000u);  // real work was done
}

TEST(StressTest, ZeroAndTinyDurationFlows) {
  Network net(5);
  LinkConfig link;
  link.rate = Mbps(10);
  link.propagation_delay = Milliseconds(5);
  link.buffer_bytes = 50'000;
  net.AddLink(link);
  SchemeOptions options;
  FlowSpec spec;
  spec.scheme = "cubic";
  spec.make_cc = MakeSchemeFactory("cubic", &options);
  spec.start = Seconds(1.0);
  spec.duration = 0;  // starts and stops at the same instant
  net.AddFlow(spec);
  FlowSpec tiny = spec;
  tiny.duration = Milliseconds(1);
  net.AddFlow(tiny);
  net.Run(Seconds(5.0));  // must not crash or hang
  ExpectConservation(net);
}

TEST(StressTest, ManySchemesSharedBottleneck) {
  // A zoo of every scheme on one link: nothing crashes, everyone gets >0.
  Network net(6);
  LinkConfig link;
  link.rate = Mbps(200);
  link.propagation_delay = Milliseconds(15);
  link.buffer_bytes = 2 * BdpBytes(Mbps(200), Milliseconds(30));
  net.AddLink(link);
  SchemeOptions options;
  for (const std::string& name : AllSchemeNames()) {
    FlowSpec spec;
    spec.scheme = name;
    spec.make_cc = MakeSchemeFactory(name, &options);
    net.AddFlow(spec);
  }
  net.Run(Seconds(20.0));
  ExpectConservation(net);
  for (size_t i = 0; i < net.flow_count(); ++i) {
    EXPECT_GT(net.flow_stats(static_cast<int>(i)).bytes_acked, 100'000u)
        << net.flow_spec(static_cast<int>(i)).scheme;
  }
}

TEST(StressTest, ExtremeRttAsymmetry) {
  // 10ms and 500ms flows on the same bottleneck.
  Network net(7);
  LinkConfig link;
  link.rate = Mbps(50);
  link.propagation_delay = Milliseconds(5);
  link.buffer_bytes = 4 * BdpBytes(Mbps(50), Milliseconds(10));
  net.AddLink(link);
  SchemeOptions options;
  FlowSpec fast;
  fast.scheme = "astraea";
  fast.make_cc = MakeSchemeFactory("astraea", &options);
  net.AddFlow(fast);
  FlowSpec slow = fast;
  slow.extra_one_way_delay = Milliseconds(490);
  net.AddFlow(slow);
  net.Run(Seconds(40.0));
  ExpectConservation(net);
  EXPECT_GT(net.flow_stats(1).throughput_mbps.MeanOver(Seconds(20.0), Seconds(40.0)), 2.0);
}

// Property sweep: random mixed-scheme scenarios never violate conservation
// and always keep utilization within physical bounds.
class RandomScenarioProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomScenarioProperty, ConservationAndBounds) {
  Rng rng(GetParam());
  Network net(GetParam());
  LinkConfig link;
  link.rate = rng.Uniform(Mbps(10), Mbps(300));
  link.propagation_delay = static_cast<TimeNs>(rng.Uniform(Milliseconds(2), Milliseconds(80)));
  link.buffer_bytes = std::max<uint64_t>(
      static_cast<uint64_t>(rng.Uniform(0.1, 4.0) *
                            static_cast<double>(BdpBytes(link.rate, 2 * link.propagation_delay))),
      4500);
  link.random_loss = rng.Bernoulli(0.3) ? rng.Uniform(0.0, 0.02) : 0.0;
  net.AddLink(link);

  SchemeOptions options;
  const auto names = AllSchemeNames();
  const int flows = static_cast<int>(rng.UniformInt(1, 5));
  for (int i = 0; i < flows; ++i) {
    FlowSpec spec;
    spec.scheme = names[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(names.size()) - 1))];
    spec.make_cc = MakeSchemeFactory(spec.scheme, &options);
    spec.start = Seconds(rng.Uniform(0.0, 3.0));
    spec.duration = rng.Bernoulli(0.5) ? Seconds(rng.Uniform(1.0, 8.0)) : -1;
    spec.extra_one_way_delay = static_cast<TimeNs>(rng.Uniform(0, Milliseconds(60)));
    net.AddFlow(spec);
  }
  const TimeNs until = Seconds(12.0);
  net.Run(until);

  uint64_t total_acked = 0;
  for (size_t i = 0; i < net.flow_count(); ++i) {
    const FlowStats& stats = net.flow_stats(static_cast<int>(i));
    const Sender& sender = net.sender(static_cast<int>(i));
    EXPECT_EQ(stats.bytes_sent, stats.bytes_acked + stats.bytes_lost + sender.inflight_bytes());
    total_acked += stats.bytes_acked;
  }
  // Physical bound: delivered bits cannot exceed the link's capacity budget.
  const double capacity_bits = net.link(0).provider().CapacityBits(0, until);
  EXPECT_LE(static_cast<double>(total_acked) * 8.0, capacity_bits * 1.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomScenarioProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace astraea
