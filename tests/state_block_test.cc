#include <gtest/gtest.h>

#include "src/core/state_block.h"

namespace astraea {
namespace {

MtpReport MakeReport(TimeNs now, double thr_mbps, TimeNs rtt, TimeNs min_rtt,
                     uint64_t cwnd_pkts = 100, double loss_mbps = 0.0) {
  MtpReport r;
  r.now = now;
  r.mtp = Milliseconds(30);
  r.thr_bps = Mbps(thr_mbps);
  r.loss_bps = Mbps(loss_mbps);
  r.avg_rtt = rtt;
  r.srtt = rtt;
  r.min_rtt = min_rtt;
  r.cwnd_bytes = cwnd_pkts * 1500;
  r.inflight_packets = cwnd_pkts;
  r.inflight_bytes = cwnd_pkts * 1500;
  r.pacing_bps = Mbps(thr_mbps);
  r.acked_packets = 10;
  return r;
}

TEST(StateBlockTest, TracksRunningExtremes) {
  StateBlock sb(5);
  sb.Update(MakeReport(Milliseconds(30), 50, Milliseconds(40), Milliseconds(30)), 1500);
  sb.Update(MakeReport(Milliseconds(60), 80, Milliseconds(35), Milliseconds(30)), 1500);
  sb.Update(MakeReport(Milliseconds(90), 60, Milliseconds(50), Milliseconds(30)), 1500);
  EXPECT_DOUBLE_EQ(sb.thr_max_bps(), Mbps(80));
  EXPECT_EQ(sb.lat_min(), Milliseconds(30));
}

TEST(StateBlockTest, FeatureNormalization) {
  StateBlock sb(5);
  const LocalFeatures f =
      sb.Update(MakeReport(Milliseconds(30), 50, Milliseconds(45), Milliseconds(30), 125), 1500);
  EXPECT_DOUBLE_EQ(f.thr_ratio, 1.0);                 // first report defines thr_max
  EXPECT_NEAR(f.lat_ratio, 45.0 / 30.0, 1e-9);
  EXPECT_NEAR(f.thr_max_scaled, 50e6 / kThrScaleBps, 1e-12);
  EXPECT_NEAR(f.lat_min_scaled, 0.03 / kLatScaleSec, 1e-9);
  // rel_cwnd: 125 pkts * 1500 B over (50 Mbps/8 * 30ms) = 187500/187500/... :
  EXPECT_NEAR(f.rel_cwnd, 125.0 * 1500.0 / (50e6 / 8.0 * 0.03), 1e-6);
  EXPECT_DOUBLE_EQ(f.inflight_ratio, 1.0);
  EXPECT_DOUBLE_EQ(f.pacing_ratio, 1.0);
}

TEST(StateBlockTest, StateVectorStacksHistoryOldestFirst) {
  StateBlock sb(3);
  sb.Update(MakeReport(Milliseconds(30), 10, Milliseconds(30), Milliseconds(30)), 1500);
  sb.Update(MakeReport(Milliseconds(60), 20, Milliseconds(30), Milliseconds(30)), 1500);
  const auto state = sb.StateVector();
  ASSERT_EQ(state.size(), 3u * kLocalFeatures);
  // First slot is zero-padding (history not yet full).
  EXPECT_FLOAT_EQ(state[0], 0.0f);
  // Second slot: thr_ratio of the 10 Mbps report (1.0 — it was max then).
  EXPECT_FLOAT_EQ(state[kLocalFeatures + 0], 1.0f);
  // Third slot: thr_ratio of the 20 Mbps report (20/20 = 1.0), thr_max scaled.
  EXPECT_NEAR(state[2 * kLocalFeatures + 1], 20e6 / kThrScaleBps, 1e-6);
}

TEST(StateBlockTest, HistoryWindowSlides) {
  StateBlock sb(2);
  for (int i = 0; i < 5; ++i) {
    sb.Update(MakeReport(Milliseconds(30 * (i + 1)), 10.0 * (i + 1), Milliseconds(30),
                         Milliseconds(30)),
              1500);
  }
  EXPECT_EQ(sb.history().size(), 2u);
  // AvgThroughputBps over the last 2 MTPs: (40 + 50)/2 Mbps.
  EXPECT_NEAR(sb.AvgThroughputBps(), Mbps(45), 1.0);
}

TEST(StateBlockTest, StabilityZeroForConstantThroughput) {
  StateBlock sb(5);
  for (int i = 0; i < 5; ++i) {
    sb.Update(MakeReport(Milliseconds(30 * (i + 1)), 50, Milliseconds(30), Milliseconds(30)),
              1500);
  }
  EXPECT_DOUBLE_EQ(sb.ThroughputStability(), 0.0);
}

TEST(StateBlockTest, StabilityPositiveForOscillation) {
  StateBlock sb(5);
  for (int i = 0; i < 5; ++i) {
    sb.Update(MakeReport(Milliseconds(30 * (i + 1)), i % 2 == 0 ? 80 : 20, Milliseconds(30),
                         Milliseconds(30)),
              1500);
  }
  EXPECT_GT(sb.ThroughputStability(), 0.3);
}

TEST(StateBlockTest, WindowedMinRttCanRise) {
  StateBlock sb(5);
  sb.Update(MakeReport(Milliseconds(30), 50, Milliseconds(40), Milliseconds(30)), 1500);
  // The sender's windowed filter later reports a higher floor (path change).
  sb.Update(MakeReport(Milliseconds(60), 50, Milliseconds(60), Milliseconds(50)), 1500);
  EXPECT_EQ(sb.lat_min(), Milliseconds(50));
}

TEST(GlobalStateTest, AggregatesTableTwoFields) {
  MtpReport a = MakeReport(Milliseconds(30), 60, Milliseconds(40), Milliseconds(30), 100);
  MtpReport b = MakeReport(Milliseconds(30), 20, Milliseconds(50), Milliseconds(30), 50, 2.0);
  b.loss_ratio = 0.1;
  LinkInfo link;
  link.base_one_way_delay = Milliseconds(15);
  link.buffer_bytes = 375'000;
  link.bandwidth = Mbps(100);

  const auto g = BuildGlobalState({&a, &b}, link, 1500);
  ASSERT_EQ(g.size(), static_cast<size_t>(kGlobalFeatures));
  EXPECT_NEAR(g[0], 0.8f, 1e-6);   // ovr_thr / c
  EXPECT_NEAR(g[1], 0.2f, 1e-6);   // min_thr / c
  EXPECT_NEAR(g[2], 0.6f, 1e-6);   // max_thr / c
  EXPECT_NEAR(g[8], 2.0f / 8.0f, 1e-6);  // num_flow / 8
  EXPECT_NEAR(g[11], 100e6 / kThrScaleBps, 1e-6);  // c scaled
}

TEST(GlobalStateTest, EmptyReportsGiveZeroVector) {
  LinkInfo link;
  const auto g = BuildGlobalState({}, link, 1500);
  for (float v : g) {
    EXPECT_FLOAT_EQ(v, 0.0f);
  }
}

}  // namespace
}  // namespace astraea
