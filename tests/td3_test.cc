#include <gtest/gtest.h>

#include <cmath>

#include "src/rl/replay_buffer.h"
#include "src/rl/td3.h"

namespace astraea {
namespace {

TEST(ReplayBufferTest, RingOverwrite) {
  ReplayBuffer buf(3);
  for (int i = 0; i < 5; ++i) {
    Transition t;
    t.reward = static_cast<float>(i);
    buf.Add(std::move(t));
  }
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.total_added(), 5u);
  // Entries 0,1 were overwritten by 3,4.
  float sum = 0.0f;
  for (size_t i = 0; i < buf.size(); ++i) {
    sum += buf.at(i).reward;
  }
  EXPECT_FLOAT_EQ(sum, 2.0f + 3.0f + 4.0f);
}

TEST(ReplayBufferTest, SampleIndicesInRange) {
  ReplayBuffer buf(100);
  for (int i = 0; i < 10; ++i) {
    buf.Add(Transition{});
  }
  Rng rng(1);
  const auto idx = buf.SampleIndices(1000, &rng);
  for (size_t i : idx) {
    EXPECT_LT(i, 10u);
  }
}

TEST(ReplayBufferTest, SamplingIsRoughlyUniform) {
  ReplayBuffer buf(16);
  for (int i = 0; i < 16; ++i) {
    buf.Add(Transition{});
  }
  Rng rng(2);
  std::vector<int> counts(16, 0);
  for (size_t i : buf.SampleIndices(16000, &rng)) {
    ++counts[i];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 1000, 150);
  }
}

Td3Config SmallConfig() {
  Td3Config config;
  config.local_state_dim = 3;
  config.global_state_dim = 2;
  config.action_dim = 1;
  config.hidden = {16, 16};
  config.batch_size = 32;
  config.gamma = 0.9f;
  return config;
}

TEST(Td3Test, ActIsDeterministicAndBounded) {
  Rng rng(1);
  Td3Trainer trainer(SmallConfig(), &rng);
  const std::vector<float> s = {0.1f, 0.2f, 0.3f};
  const auto a1 = trainer.Act(s);
  const auto a2 = trainer.Act(s);
  EXPECT_EQ(a1, a2);
  EXPECT_GE(a1[0], -1.0f);
  EXPECT_LE(a1[0], 1.0f);
}

TEST(Td3Test, NoiseStaysClipped) {
  Rng rng(2);
  Td3Trainer trainer(SmallConfig(), &rng);
  const std::vector<float> s = {0.0f, 0.0f, 0.0f};
  for (int i = 0; i < 200; ++i) {
    const auto a = trainer.ActWithNoise(s, 0.5f, &rng);
    EXPECT_GE(a[0], -1.0f);
    EXPECT_LE(a[0], 1.0f);
  }
}

TEST(Td3Test, UpdateIsNoOpWhenBufferSmall) {
  Rng rng(3);
  Td3Trainer trainer(SmallConfig(), &rng);
  ReplayBuffer buf(100);
  buf.Add(Transition{{0, 0}, {0, 0, 0}, {0}, 0.0f, {0, 0}, {0, 0, 0}, false});
  const auto diag = trainer.Update(buf, &rng);
  EXPECT_EQ(diag.updates, 0);
}

// A one-step bandit: reward = -(a - 0.5)^2. The optimal deterministic policy
// outputs 0.5 regardless of state. TD3 should find it.
TEST(Td3Test, SolvesContinuousBandit) {
  Rng rng(4);
  Td3Config config = SmallConfig();
  config.gamma = 0.0f;  // bandit: no bootstrapping
  Td3Trainer trainer(config, &rng);
  ReplayBuffer buf(20'000);

  const std::vector<float> g = {0.0f, 0.0f};
  const std::vector<float> s = {0.1f, -0.2f, 0.3f};
  for (int i = 0; i < 4000; ++i) {
    const float a = static_cast<float>(rng.Uniform(-1.0, 1.0));
    Transition t;
    t.global_state = g;
    t.local_state = s;
    t.action = {a};
    t.reward = -(a - 0.5f) * (a - 0.5f);
    t.next_global_state = g;
    t.next_local_state = s;
    t.terminal = true;
    buf.Add(std::move(t));
  }
  for (int i = 0; i < 1500; ++i) {
    trainer.Update(buf, &rng);
  }
  const float a_star = trainer.Act(s)[0];
  EXPECT_NEAR(a_star, 0.5f, 0.15f);
}

// The critic should use the *global* state: two transitions identical in
// local state but different in global state carry different rewards; after
// training, the critic should separate them.
TEST(Td3Test, CriticExploitsGlobalState) {
  Rng rng(5);
  Td3Config config = SmallConfig();
  config.gamma = 0.0f;
  Td3Trainer trainer(config, &rng);
  ReplayBuffer buf(10'000);

  const std::vector<float> s = {0.0f, 0.0f, 0.0f};
  for (int i = 0; i < 2000; ++i) {
    const bool good = (i % 2 == 0);
    Transition t;
    t.global_state = good ? std::vector<float>{1.0f, 0.0f} : std::vector<float>{0.0f, 1.0f};
    t.local_state = s;
    t.action = {0.0f};
    t.reward = good ? 1.0f : -1.0f;
    t.next_global_state = t.global_state;
    t.next_local_state = s;
    t.terminal = true;
    buf.Add(std::move(t));
  }
  for (int i = 0; i < 800; ++i) {
    trainer.Update(buf, &rng);
  }
  const std::vector<float> in_good = {1.0f, 0.0f, 0, 0, 0, 0.0f};
  const std::vector<float> in_bad = {0.0f, 1.0f, 0, 0, 0, 0.0f};
  const float q_good = trainer.critic1().Infer(in_good)[0];
  const float q_bad = trainer.critic1().Infer(in_bad)[0];
  EXPECT_GT(q_good, q_bad + 0.5f);
}

// The batched Update (flat ForwardBatch/BackwardBatch kernels) must match the
// per-sample reference path: identical RNG consumption, near-identical floats.
TEST(Td3Test, BatchedUpdateMatchesReferencePath) {
  Td3Config config = SmallConfig();
  config.batch_size = 48;

  Rng init_a(21);
  Td3Trainer batched(config, &init_a);
  Rng init_b(21);
  Td3Trainer reference(config, &init_b);

  ReplayBuffer buf(4096);
  Rng data_rng(22);
  for (int i = 0; i < 600; ++i) {
    Transition t;
    t.global_state = {static_cast<float>(data_rng.Uniform(-1, 1)),
                      static_cast<float>(data_rng.Uniform(-1, 1))};
    t.local_state = {static_cast<float>(data_rng.Uniform(-1, 1)),
                     static_cast<float>(data_rng.Uniform(-1, 1)),
                     static_cast<float>(data_rng.Uniform(-1, 1))};
    t.action = {static_cast<float>(data_rng.Uniform(-1, 1))};
    t.reward = static_cast<float>(data_rng.Uniform(-1, 1));
    t.next_global_state = t.global_state;
    t.next_local_state = t.local_state;
    t.terminal = data_rng.Bernoulli(0.1);
    buf.Add(std::move(t));
  }

  Rng update_a(23);
  Rng update_b(23);
  for (int step = 0; step < 10; ++step) {
    const Td3Diagnostics da = batched.Update(buf, &update_a);
    const Td3Diagnostics db = reference.UpdateReference(buf, &update_b);
    EXPECT_NEAR(da.critic_loss, db.critic_loss, 1e-4) << "step " << step;
    EXPECT_NEAR(da.actor_objective, db.actor_objective, 1e-4) << "step " << step;
  }

  const auto pa = batched.actor().params();
  const auto pb = reference.actor().params();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_NEAR(pa[i], pb[i], 1e-4) << "actor param " << i;
  }
  const auto ca = batched.critic1().params();
  const auto cb = reference.critic1().params();
  for (size_t i = 0; i < ca.size(); ++i) {
    ASSERT_NEAR(ca[i], cb[i], 1e-4) << "critic param " << i;
  }
}

TEST(Td3Test, SaveLoadActorRoundTrip) {
  Rng rng(6);
  Td3Trainer trainer(SmallConfig(), &rng);
  const std::vector<float> s = {0.3f, 0.3f, 0.3f};
  const float before = trainer.Act(s)[0];
  const std::string path = "/tmp/astraea_td3_actor.ckpt";
  trainer.SaveActor(path);

  Rng rng2(77);
  Td3Trainer other(SmallConfig(), &rng2);
  EXPECT_NE(other.Act(s)[0], before);  // different init
  other.LoadActor(path);
  EXPECT_FLOAT_EQ(other.Act(s)[0], before);
}

}  // namespace
}  // namespace astraea
