#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "bench/harness/experiments.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace astraea {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, ParallelMapPreservesIndexOrder) {
  const auto squares = ParallelMap(
      50, [](size_t i) { return static_cast<int>(i * i); }, 4);
  ASSERT_EQ(squares.size(), 50u);
  for (size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], static_cast<int>(i * i));
  }
}

TEST(ThreadPoolTest, ParallelMapInlineAndThreadedAgree) {
  auto fn = [](size_t i) { return 3.0 * static_cast<double>(i) + 1.0; };
  EXPECT_EQ(ParallelMap(20, fn, 1), ParallelMap(20, fn, 5));
}

TEST(RngDeriveSeedTest, StreamsNeverCollideUnlikeAdditiveBases) {
  // The old scheme (1000 + rep vs 2000 + rep) collides at rep = 1000+.
  // DeriveSeed keeps distinct streams apart at any index.
  std::set<uint64_t> seen;
  const uint64_t streams[] = {kConvergenceSeedStream, kJainSeedStream, 1000, 2000};
  for (uint64_t stream : streams) {
    for (uint64_t rep = 0; rep < 2000; ++rep) {
      EXPECT_TRUE(seen.insert(Rng::DeriveSeed(stream, rep)).second)
          << "collision at stream " << stream << " rep " << rep;
    }
  }
}

TEST(RngDeriveSeedTest, IsAPureFunction) {
  EXPECT_EQ(Rng::DeriveSeed(7, 9), Rng::DeriveSeed(7, 9));
  EXPECT_NE(Rng::DeriveSeed(7, 9), Rng::DeriveSeed(9, 7));
}

StaggeredConfig TinyConfig() {
  StaggeredConfig config = DefaultStaggeredConfig();
  config.start_interval = Seconds(6.0);
  config.flow_duration = Seconds(18.0);
  config.until = Seconds(30.0);
  return config;
}

// The headline determinism guarantee: fanning reps across N workers yields
// bit-identical results to running them inline on one thread.
TEST(ParallelHarnessTest, ConvergenceSummaryIdenticalForOneAndManyWorkers) {
  const SchemeConvergenceSummary serial =
      MeasureStaggeredConvergence("cubic", TinyConfig(), 3, 0.10, /*workers=*/1);
  const SchemeConvergenceSummary parallel =
      MeasureStaggeredConvergence("cubic", TinyConfig(), 3, 0.10, /*workers=*/3);
  EXPECT_EQ(serial.total_events, parallel.total_events);
  EXPECT_EQ(serial.converged_events, parallel.converged_events);
  EXPECT_EQ(serial.avg_convergence_s, parallel.avg_convergence_s);
  EXPECT_EQ(serial.avg_stability_mbps, parallel.avg_stability_mbps);
  EXPECT_EQ(serial.avg_jain, parallel.avg_jain);
  EXPECT_EQ(serial.utilization, parallel.utilization);
}

TEST(ParallelHarnessTest, JainSamplesIdenticalForOneAndManyWorkers) {
  const std::vector<double> serial =
      CollectJainSamples("vegas", TinyConfig(), 4, /*workers=*/1);
  const std::vector<double> parallel =
      CollectJainSamples("vegas", TinyConfig(), 4, /*workers=*/4);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelHarnessTest, RunRepsDerivesSeedsFromTheStream) {
  const auto seeds = RunReps<uint64_t>(
      4, kJainSeedStream, [](int /*rep*/, uint64_t seed) { return seed; }, 2);
  for (int rep = 0; rep < 4; ++rep) {
    EXPECT_EQ(seeds[static_cast<size_t>(rep)],
              Rng::DeriveSeed(kJainSeedStream, static_cast<uint64_t>(rep)));
  }
}

}  // namespace
}  // namespace astraea
