#include "src/sim/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/cc/cubic.h"
#include "src/sim/network.h"

namespace astraea {
namespace {

// Everything observable about a finished run, for exact-equality comparison.
struct RunResult {
  uint64_t bytes_sent = 0;
  uint64_t bytes_acked = 0;
  uint64_t bytes_lost = 0;
  uint64_t delivered = 0;
  uint64_t dropped = 0;
  TimeNs min_rtt = 0;
  TimeNs srtt = 0;

  bool operator==(const RunResult&) const = default;
};

// One cubic flow through a shallow-buffered bottleneck (guarantees drops and
// loss recovery, so every sender code path runs), optionally traced.
RunResult RunScenario(Tracer* tracer) {
  Network net(42);
  LinkConfig link;
  link.rate = Mbps(20);
  link.propagation_delay = Milliseconds(10);
  link.buffer_bytes = 30'000;  // shallow: forces queue drops
  net.AddLink(link);
  FlowSpec spec;
  spec.scheme = "cubic";
  spec.make_cc = [] { return std::make_unique<Cubic>(); };
  net.AddFlow(spec);
  if (tracer != nullptr) {
    net.SetTracer(tracer);
  }
  net.Run(Seconds(10.0));

  RunResult r;
  r.bytes_sent = net.flow_stats(0).bytes_sent;
  r.bytes_acked = net.flow_stats(0).bytes_acked;
  r.bytes_lost = net.flow_stats(0).bytes_lost;
  r.delivered = net.link(0).delivered_bytes();
  r.dropped = net.link(0).dropped_bytes();
  r.min_rtt = net.sender(0).min_rtt();
  r.srtt = net.sender(0).srtt();
  return r;
}

TEST(TracerTest, TracedRunIsBitIdenticalToUntraced) {
  const RunResult untraced = RunScenario(nullptr);

  Tracer tracer("", Tracer::Format::kNone);
  const RunResult traced = RunScenario(&tracer);

  EXPECT_GT(tracer.recorded(), 0u);
  EXPECT_EQ(traced, untraced);  // tracing must not perturb the simulation
}

TEST(TracerTest, ForceTraceEnvVarIsBitIdenticalToo) {
  const RunResult baseline = RunScenario(nullptr);
  ::setenv("ASTRAEA_FORCE_TRACE", "1", 1);
  const RunResult forced = RunScenario(nullptr);
  ::unsetenv("ASTRAEA_FORCE_TRACE");
  EXPECT_EQ(forced, baseline);
}

TEST(TracerTest, BinaryRoundTripPreservesEvents) {
  const std::string path = testing::TempDir() + "/astraea_trace_test.bin";
  Tracer tracer(path, Tracer::Format::kBinary, /*ring_capacity=*/256);
  RunScenario(&tracer);
  const uint64_t recorded = tracer.recorded();
  tracer.Close();

  const std::vector<TraceEvent> events = ReadBinaryTrace(path);
  ASSERT_EQ(events.size(), recorded);
  ASSERT_GT(events.size(), 1000u);  // ring smaller than event count: flushes worked

  // Times are monotone (the simulator emits in event order) and the scenario
  // produced every flow-side event class, including congestive drops.
  bool saw[9] = {};
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(events[i].time, events[i - 1].time);
    }
    ASSERT_LE(static_cast<int>(events[i].type), 8);
    saw[static_cast<int>(events[i].type)] = true;
  }
  EXPECT_TRUE(saw[static_cast<int>(TraceEventType::kEnqueue)]);
  EXPECT_TRUE(saw[static_cast<int>(TraceEventType::kDequeue)]);
  EXPECT_TRUE(saw[static_cast<int>(TraceEventType::kDrop)]);
  EXPECT_TRUE(saw[static_cast<int>(TraceEventType::kSend)]);
  EXPECT_TRUE(saw[static_cast<int>(TraceEventType::kAck)]);
  EXPECT_TRUE(saw[static_cast<int>(TraceEventType::kLoss)]);
  EXPECT_TRUE(saw[static_cast<int>(TraceEventType::kCwnd)]);
  std::remove(path.c_str());
}

TEST(TracerTest, ReadBinaryTraceRejectsGarbage) {
  const std::string path = testing::TempDir() + "/astraea_trace_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a trace file at all";
  }
  EXPECT_THROW(ReadBinaryTrace(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TracerTest, JsonlSinkWritesOneObjectPerEvent) {
  const std::string path = testing::TempDir() + "/astraea_trace_test.jsonl";
  Tracer tracer(path, Tracer::Format::kJsonl, /*ring_capacity=*/128);
  tracer.Record(Milliseconds(1), TraceEventType::kSend, 0, -1, 7, 1500.0, 3000.0);
  tracer.Record(Milliseconds(2), TraceEventType::kDrop, 0, 0, 8, 1500.0, 30000.0);
  tracer.Close();

  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"ev\":"), std::string::npos);
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(TracerTest, InMemoryRingKeepsMostRecentEvents) {
  Tracer tracer("", Tracer::Format::kNone, /*ring_capacity=*/8);
  for (uint64_t i = 0; i < 20; ++i) {
    tracer.Record(static_cast<TimeNs>(i), TraceEventType::kSend, 0, -1, i, 0.0, 0.0);
  }
  EXPECT_EQ(tracer.recorded(), 20u);
  const std::vector<TraceEvent> buffered = tracer.BufferedEvents();
  ASSERT_EQ(buffered.size(), 8u);
  // Oldest-first window over the most recent 8 records (seq 12..19).
  for (size_t i = 0; i < buffered.size(); ++i) {
    EXPECT_EQ(buffered[i].seq, 12 + i);
  }
}

TEST(TracerTest, RecordAfterCloseIsDropped) {
  Tracer tracer("", Tracer::Format::kNone);
  tracer.Record(0, TraceEventType::kSend, 0, -1, 0, 0.0, 0.0);
  tracer.Close();
  tracer.Record(1, TraceEventType::kSend, 0, -1, 1, 0.0, 0.0);
  EXPECT_EQ(tracer.recorded(), 1u);
}

}  // namespace
}  // namespace astraea
