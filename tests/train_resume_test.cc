// Crash-safe training tests: kill-and-resume determinism and crash recovery
// at every checkpoint-path failpoint. These are the two headline guarantees
// of the checkpoint subsystem:
//
//   1. Training k episodes, dying via failpoint, and resuming for the rest
//      produces bit-identical weights, optimizer state, replay buffer and
//      diagnostics to a run that was never interrupted.
//   2. A crash injected at any step of the checkpoint commit protocol leaves
//      a valid, loadable checkpoint on disk (the old one or the new one —
//      never a corrupt one).
//
// Crashes are real: the child process dies with _exit() inside a failpoint,
// discarding all in-memory state, exactly like an OOM-kill would.

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "src/core/learner.h"
#include "src/util/checkpoint.h"
#include "src/util/failpoint.h"

namespace astraea {
namespace {

// Small but real training setup: short episodes, frequent model updates and
// a small batch so TD3 gradient steps (and therefore optimizer/target-net
// state) are exercised from the first episode.
LearnerConfig TestConfig() {
  LearnerConfig config;
  config.seed = 21;
  config.episode_length = Seconds(2.0);
  config.replay_capacity = 8192;
  config.env_instances = 1;
  config.exploration_decay_episodes = 6;  // the total across both test runs
  config.hp.history_length = 2;           // smaller nets -> smaller checkpoints
  config.hp.batch_size = 16;
  config.hp.model_update_interval = Seconds(0.5);
  config.hp.model_update_steps = 2;
  return config;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

struct EpisodeRecord {
  int episode;
  double mean_reward;
  double critic_loss;
  int64_t updates;
};

TEST(TrainResumeTest, SaveLoadRoundTripIsByteIdentical) {
  const std::string p1 = "/tmp/astraea_state_rt1.ckpt";
  const std::string p2 = "/tmp/astraea_state_rt2.ckpt";
  Learner a(TestConfig());
  a.Train(2, {});
  a.SaveState(p1);

  Learner b(TestConfig());
  b.LoadState(p1);
  EXPECT_EQ(b.episodes_done(), 2);
  b.SaveState(p2);
  EXPECT_EQ(ReadFileBytes(p1), ReadFileBytes(p2));
}

TEST(TrainResumeTest, LoadFromCorruptStateThrows) {
  const std::string path = "/tmp/astraea_state_corrupt.ckpt";
  Learner a(TestConfig());
  a.SaveState(path);
  std::string bytes = ReadFileBytes(path);
  bytes.resize(bytes.size() / 2);
  WriteFileBytes(path, bytes);
  Learner b(TestConfig());
  EXPECT_THROW(b.LoadState(path), SerializationError);
}

// Strided fuzz over a full learner-state checkpoint: truncations and bit
// flips at every stride offset must all throw, never load.
TEST(TrainResumeTest, FuzzedStateCheckpointAlwaysThrows) {
  const std::string path = "/tmp/astraea_state_fuzz.ckpt";
  const std::string mutant = "/tmp/astraea_state_fuzz_mutant.ckpt";
  Learner a(TestConfig());
  a.Train(1, {});
  a.SaveState(path);
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 1000u);

  const size_t stride = bytes.size() / 64 + 1;
  for (size_t off = 0; off < bytes.size(); off += stride) {
    {
      WriteFileBytes(mutant, bytes.substr(0, off));
      Learner b(TestConfig());
      EXPECT_THROW(b.LoadState(mutant), SerializationError) << "truncated at " << off;
    }
    {
      std::string corrupted = bytes;
      corrupted[off] = static_cast<char>(corrupted[off] ^ 0x40);
      WriteFileBytes(mutant, corrupted);
      Learner b(TestConfig());
      EXPECT_THROW(b.LoadState(mutant), SerializationError) << "bit flip at " << off;
    }
  }
}

// Headline determinism test: 6 straight episodes vs. 3 episodes, a hard
// failpoint kill, and a 3-episode resume from the last durable checkpoint.
// Final serialized training state must match byte for byte, and per-episode
// diagnostics after the resume point must be bit-identical doubles.
TEST(TrainResumeTest, KillAndResumeIsBitIdentical) {
  const std::string straight_path = "/tmp/astraea_straight.state";
  const std::string resumed_path = "/tmp/astraea_resumed.state";
  const std::string ck_prefix = "/tmp/astraea_killrun.state-";

  // Uninterrupted reference run: 6 episodes.
  std::vector<EpisodeRecord> straight;
  {
    Learner a(TestConfig());
    a.Train(6, [&](const EpisodeDiagnostics& d) {
      straight.push_back({d.episode, d.env.mean_reward, d.td3.critic_loss, d.td3.updates});
    });
    a.SaveState(straight_path);
  }
  ASSERT_EQ(straight.size(), 6u);

  // Killed run: checkpoint after every episode; the failpoint hard-kills the
  // process at the top of episode 4, so the checkpoint for episode 3 is the
  // newest durable state.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    failpoint::Configure("learner.episode=4");
    Learner b(TestConfig());
    b.Train(6, [&](const EpisodeDiagnostics& d) {
      b.SaveState(ck_prefix + std::to_string(d.episode));
    });
    ::_exit(0);  // unreachable if the failpoint fired
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), failpoint::kCrashExitCode) << "child did not die at failpoint";

  // Resume in a fresh process image (this one): load episode-3 state, train
  // the remaining 3 episodes, compare everything.
  std::vector<EpisodeRecord> resumed;
  {
    Learner c(TestConfig());
    c.LoadState(ck_prefix + "3");
    EXPECT_EQ(c.episodes_done(), 3);
    c.Train(3, [&](const EpisodeDiagnostics& d) {
      resumed.push_back({d.episode, d.env.mean_reward, d.td3.critic_loss, d.td3.updates});
    });
    c.SaveState(resumed_path);
  }
  ASSERT_EQ(resumed.size(), 3u);
  for (size_t i = 0; i < resumed.size(); ++i) {
    const EpisodeRecord& r = resumed[i];
    const EpisodeRecord& s = straight[3 + i];
    EXPECT_EQ(r.episode, s.episode);
    EXPECT_EQ(r.mean_reward, s.mean_reward) << "episode " << r.episode;
    EXPECT_EQ(r.critic_loss, s.critic_loss) << "episode " << r.episode;
    EXPECT_EQ(r.updates, s.updates) << "episode " << r.episode;
  }

  // The full serialized state — actor, critics, targets, optimizers, replay
  // buffer, RNG stream, counters — is byte-identical.
  EXPECT_EQ(ReadFileBytes(straight_path), ReadFileBytes(resumed_path));
}

// Crash-recovery: inject a hard kill at every failpoint in the checkpoint
// commit protocol; after each, a valid checkpoint (old or new) must load.
TEST(TrainResumeTest, CrashAtEveryCommitStepLeavesLoadableCheckpoint) {
  struct SiteCase {
    const char* site;
    bool expect_new;  // after the crash, is the NEW payload visible?
  };
  const SiteCase cases[] = {
      {"ckpt.commit.begin", false},
      {"ckpt.commit.torn_write", false},
      {"ckpt.commit.before_fsync", false},
      {"ckpt.commit.before_rename", false},
      // rename already happened; only the directory fsync was outstanding.
      {"ckpt.commit.before_dirsync", true},
  };

  auto write_marker = [](const std::string& path, uint32_t marker) {
    CheckpointWriter ckpt(path);
    ckpt.payload()->WriteU32(marker);
    std::vector<float> bulk(512, static_cast<float>(marker));
    ckpt.payload()->WriteFloatVec(bulk);
    ckpt.Commit();
  };
  auto read_marker = [](const std::string& path) {
    CheckpointReader ckpt(path);
    const uint32_t marker = ckpt.payload()->ReadU32();
    const std::vector<float> bulk = ckpt.payload()->ReadFloatVec();
    EXPECT_EQ(bulk.size(), 512u);
    for (float f : bulk) {
      EXPECT_EQ(f, static_cast<float>(marker));
    }
    return marker;
  };

  for (const SiteCase& c : cases) {
    SCOPED_TRACE(c.site);
    const std::string path = std::string("/tmp/astraea_crash_") + c.site + ".ckpt";
    write_marker(path, 1);  // the pre-existing checkpoint

    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      failpoint::Configure(std::string(c.site) + "=1");
      CheckpointWriter ckpt(path);
      ckpt.payload()->WriteU32(2);
      std::vector<float> bulk(512, 2.0f);
      ckpt.payload()->WriteFloatVec(bulk);
      ckpt.Commit();  // dies inside
      ::_exit(0);     // unreachable
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), failpoint::kCrashExitCode);

    // Never corrupt: the file must load, and must be exactly old or new.
    uint32_t marker = 0;
    EXPECT_NO_THROW(marker = read_marker(path));
    EXPECT_EQ(marker, c.expect_new ? 2u : 1u);
  }
}

}  // namespace
}  // namespace astraea
