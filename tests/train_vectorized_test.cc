#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>

#include "src/train/vectorized_trainer.h"
#include "src/util/metrics.h"

namespace astraea {
namespace {

// Small enough to train a few super-episodes in well under a second, large
// enough that every mechanism (rounds, interleave, updates, eviction) runs.
VectorizedTrainerConfig FastConfig() {
  VectorizedTrainerConfig config;
  config.seed = 21;
  config.num_envs = 3;
  config.replay_capacity = 20'000;
  config.replay_shards = 4;
  config.episode_length = Seconds(2.0);
  // Pin the noise-decay horizon: with the default 0 the horizon is the first
  // Train() call's budget, so split runs would legitimately decay differently
  // (the CLI always pins this to the total --episodes target).
  config.exploration_decay_episodes = 3;
  config.hp.model_update_interval = Milliseconds(500);
  config.hp.model_update_steps = 2;
  config.hp.batch_size = 32;
  config.domain.base.bandwidth_lo = Mbps(8);
  config.domain.base.bandwidth_hi = Mbps(16);
  config.domain.base.rtt_lo = Milliseconds(20);
  config.domain.base.rtt_hi = Milliseconds(40);
  config.domain.base.buffer_bdp_lo = 0.5;
  config.domain.base.buffer_bdp_hi = 2.0;
  config.domain.base.flows_lo = 2;
  config.domain.base.flows_hi = 3;
  return config;
}

uint32_t TrainAndFingerprint(size_t workers, int episodes) {
  VectorizedTrainerConfig config = FastConfig();
  config.workers = workers;
  VectorizedTrainer trainer(config);
  trainer.Train(episodes, [](const EpisodeDiagnostics&) {});
  EXPECT_GT(trainer.total_env_steps(), 0u);
  return trainer.StateFingerprint();
}

TEST(VectorizedTrainerTest, WorkerCountDoesNotChangeResults) {
  const uint32_t one = TrainAndFingerprint(1, 2);
  const uint32_t two = TrainAndFingerprint(2, 2);
  const uint32_t four = TrainAndFingerprint(4, 2);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
}

TEST(VectorizedTrainerTest, KillAndResumeIsBitIdentical) {
  const std::string path = "/tmp/astraea_vec_resume_test.state";
  VectorizedTrainer straight(FastConfig());
  straight.Train(3, [](const EpisodeDiagnostics&) {});

  VectorizedTrainer first(FastConfig());
  first.Train(1, [](const EpisodeDiagnostics&) {});
  // Actors produce different transition counts (different sampled episodes),
  // so the interleave genuinely stops mid-rotation — the state being saved
  // includes a live cursor/stall pair, not a trivially-reset one.
  EXPECT_GT(first.replay().interleave_cursor() + first.replay().interleave_stalls(), 0u);
  first.SaveState(path);

  VectorizedTrainer resumed(FastConfig());
  resumed.LoadState(path);
  EXPECT_EQ(resumed.episodes_done(), 1);
  EXPECT_EQ(resumed.StateFingerprint(), first.StateFingerprint());

  // Resume with a DIFFERENT worker count: still the same end state.
  VectorizedTrainerConfig wide = FastConfig();
  wide.workers = 4;
  VectorizedTrainer resumed_wide(wide);
  resumed_wide.LoadState(path);

  resumed.Train(2, [](const EpisodeDiagnostics&) {});
  resumed_wide.Train(2, [](const EpisodeDiagnostics&) {});
  EXPECT_EQ(resumed.StateFingerprint(), straight.StateFingerprint());
  EXPECT_EQ(resumed_wide.StateFingerprint(), straight.StateFingerprint());
  std::filesystem::remove(path);
}

TEST(VectorizedTrainerTest, LoadRejectsMismatchedActorCount) {
  const std::string path = "/tmp/astraea_vec_actors_test.state";
  VectorizedTrainer trainer(FastConfig());
  trainer.Train(1, [](const EpisodeDiagnostics&) {});
  trainer.SaveState(path);

  VectorizedTrainerConfig other = FastConfig();
  other.num_envs = 4;
  VectorizedTrainer wrong(other);
  EXPECT_THROW(wrong.LoadState(path), SerializationError);
  std::filesystem::remove(path);
}

TEST(VectorizedTrainerTest, EvaluationNeverPerturbsTraining) {
  // Interleaving evals between episodes must not move the training state:
  // eval draws come from a stream keyed by kTrainEvalSeedStream + episode
  // index, never from an actor or learner stream.
  VectorizedTrainer quiet(FastConfig());
  quiet.Train(2, [](const EpisodeDiagnostics&) {});

  VectorizedTrainer chatty(FastConfig());
  chatty.Train(1, [](const EpisodeDiagnostics&) {});
  chatty.EvaluateFairness();
  chatty.EvaluateFairness();
  chatty.Train(1, [](const EpisodeDiagnostics&) {});
  EXPECT_EQ(chatty.StateFingerprint(), quiet.StateFingerprint());
}

TEST(VectorizedTrainerTest, ActorSeedStreamsAreDecorrelated) {
  // Adjacent actor indices must yield unrelated streams: the splitmix
  // finalizer has to break the i -> i+1 structure, or actors would explore
  // in near-lockstep.
  const uint64_t base = Rng::DeriveSeed(kTrainActorSeedStream, 21);
  std::set<uint64_t> seeds;
  for (uint64_t i = 0; i < 64; ++i) {
    seeds.insert(Rng::DeriveSeed(base, i));
  }
  EXPECT_EQ(seeds.size(), 64u);
  // First draws of adjacent streams differ, and differ from the base stream.
  Rng r0(Rng::DeriveSeed(base, 0));
  Rng r1(Rng::DeriveSeed(base, 1));
  Rng rb(base);
  const double d0 = r0.Uniform(0.0, 1.0);
  const double d1 = r1.Uniform(0.0, 1.0);
  const double db = rb.Uniform(0.0, 1.0);
  EXPECT_NE(d0, d1);
  EXPECT_NE(d0, db);
  // The eval stream family is disjoint from the actor family.
  EXPECT_NE(Rng::DeriveSeed(kTrainActorSeedStream, 21),
            Rng::DeriveSeed(kTrainEvalSeedStream, 21));
}

TEST(VectorizedTrainerTest, SavedCheckpointLoadsAsMlpPolicy) {
  // The full production pipeline: the trainer's deployment artifact must
  // come back through MlpPolicy::LoadFromFile with the real state dims — the
  // ROADMAP-1d regression where every consumer silently fell back to the
  // distilled policy because the written checkpoint failed dims validation.
  const std::string path = "/tmp/astraea_vec_actor_roundtrip.ckpt";
  VectorizedTrainerConfig config = FastConfig();
  VectorizedTrainer trainer(config);
  trainer.Train(1, [](const EpisodeDiagnostics&) {});
  trainer.SaveCheckpoint(path);
  const auto policy = MlpPolicy::LoadFromFile(path);
  EXPECT_EQ(policy->actor().input_size(), LocalStateDim(config.hp));
  EXPECT_EQ(policy->actor().output_size(), 1);
  std::filesystem::remove(path);
}

TEST(VectorizedTrainerTest, MetricsAreRegisteredAtConstruction) {
  VectorizedTrainer trainer(FastConfig());
  const std::string snapshot = MetricsRegistry::Global().ToJson();
  for (const char* name :
       {"train.episodes_total", "train.rounds_total", "train.env_steps_total",
        "train.actor_steps_total", "train.interleave_stalls_total", "train.replay_size",
        "train.exploration_noise", "train.round_seconds", "train.update_seconds",
        "train.replay_shard_occupancy.0", "train.replay_shard_occupancy.3"}) {
    EXPECT_NE(snapshot.find(name), std::string::npos) << name;
  }
}

TEST(DomainSamplerTest, TableThreeConsumesNoExtraDraws) {
  // A TableThree sampler must leave the Rng stream exactly where the base
  // SampleEpisode left it — that equivalence is what keeps the serial
  // Learner's episode sequence byte-identical after the refactor.
  DomainRanges ranges = DomainRanges::TableThree();
  DomainSampler sampler(ranges);
  Rng a(77);
  Rng b(77);
  const EnvEpisodeConfig via_sampler = sampler.Sample(&a);
  EnvEpisodeConfig direct = SampleEpisode(ranges.base, &b);
  direct.episode_length = ranges.episode_length;
  EXPECT_EQ(via_sampler.bandwidth, direct.bandwidth);
  EXPECT_EQ(via_sampler.base_rtt, direct.base_rtt);
  EXPECT_EQ(via_sampler.seed, direct.seed);
  EXPECT_EQ(via_sampler.flows.size(), direct.flows.size());
  // Identical next draw == identical stream position.
  EXPECT_EQ(a.Uniform(0.0, 1.0), b.Uniform(0.0, 1.0));
}

TEST(DomainSamplerTest, SamplingIsDeterministic) {
  DomainSampler sampler(DomainRanges::Extended());
  Rng a(5);
  Rng b(5);
  for (int i = 0; i < 50; ++i) {
    const DomainSampler::Draw da = sampler.SampleDraw(&a);
    const DomainSampler::Draw db = sampler.SampleDraw(&b);
    EXPECT_EQ(da.family, db.family);
    EXPECT_EQ(da.config.bandwidth, db.config.bandwidth);
    EXPECT_EQ(da.config.random_loss, db.config.random_loss);
    EXPECT_EQ(da.config.seed, db.config.seed);
  }
}

TEST(DomainSamplerTest, ExtendedCoversEveryScenarioFamily) {
  DomainRanges ranges = DomainRanges::Extended();
  DomainSampler sampler(ranges);
  Rng rng(123);
  std::set<std::string> families;
  bool saw_loss = false;
  for (int i = 0; i < 400; ++i) {
    const DomainSampler::Draw draw = sampler.SampleDraw(&rng);
    const size_t plus = draw.family.find('+');
    const std::string base_family = draw.family.substr(0, plus);
    families.insert(base_family);
    if (plus != std::string::npos) {
      saw_loss = true;
      EXPECT_GE(draw.config.random_loss, ranges.loss_lo);
      EXPECT_LE(draw.config.random_loss, ranges.loss_hi);
    }
    EXPECT_GE(draw.config.bandwidth, ranges.base.bandwidth_lo);
    EXPECT_LE(draw.config.bandwidth, ranges.base.bandwidth_hi);
    EXPECT_GE(static_cast<int>(draw.config.flows.size()), ranges.base.flows_lo);
    EXPECT_LE(static_cast<int>(draw.config.flows.size()), ranges.base.flows_hi);
    EXPECT_EQ(draw.config.episode_length, ranges.episode_length);
    if (base_family == "lte-trace") {
      EXPECT_NE(draw.config.trace, nullptr);
    } else {
      EXPECT_EQ(draw.config.trace, nullptr);
    }
  }
  EXPECT_TRUE(families.count("droptail"));
  EXPECT_TRUE(families.count("red"));
  EXPECT_TRUE(families.count("codel"));
  EXPECT_TRUE(families.count("lte-trace"));
  EXPECT_TRUE(saw_loss);
}

}  // namespace
}  // namespace astraea
