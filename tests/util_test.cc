#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "src/util/backoff.h"
#include "src/util/chaos.h"
#include "src/util/cli_flags.h"
#include "src/util/failpoint.h"
#include "src/util/rng.h"
#include "src/util/serialization.h"
#include "src/util/stats.h"
#include "src/util/time.h"
#include "src/util/windowed_filter.h"

namespace astraea {
namespace {

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(Milliseconds(30), 30'000'000);
  EXPECT_EQ(Seconds(1.5), 1'500'000'000);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(2.0)), 2.0);
  EXPECT_DOUBLE_EQ(ToMillis(Milliseconds(42)), 42.0);
}

TEST(TimeTest, TransmissionDelayRoundsUp) {
  // 1500 bytes at 100 Mbps = 120 microseconds exactly.
  EXPECT_EQ(TransmissionDelay(1500, Mbps(100)), Microseconds(120));
  // A non-integral duration rounds up, never down to zero.
  EXPECT_GT(TransmissionDelay(1, Gbps(400)), 0);
}

TEST(TimeTest, BdpBytes) {
  // 100 Mbps * 30 ms = 375000 bytes.
  EXPECT_EQ(BdpBytes(Mbps(100), Milliseconds(30)), 375'000u);
}

TEST(ParseDurationTest, AcceptsEveryUnit) {
  constexpr TimeNs kLo = 0;
  constexpr TimeNs kHi = Seconds(100.0);
  EXPECT_EQ(cli::ParseDuration("--t", "250ns", kLo, kHi), 250);
  EXPECT_EQ(cli::ParseDuration("--t", "500us", kLo, kHi), Microseconds(500));
  EXPECT_EQ(cli::ParseDuration("--t", "5ms", kLo, kHi), Milliseconds(5));
  EXPECT_EQ(cli::ParseDuration("--t", "1s", kLo, kHi), Seconds(1.0));
  EXPECT_EQ(cli::ParseDuration("--t", "1.5ms", kLo, kHi), Microseconds(1500));
  EXPECT_EQ(cli::ParseDuration("--t", "0.25s", kLo, kHi), Milliseconds(250));
  EXPECT_EQ(cli::ParseDuration("--t", "0ns", kLo, kHi), 0);
}

TEST(ParseDurationDeathTest, RejectsMalformedValues) {
  constexpr TimeNs kLo = Microseconds(10);
  constexpr TimeNs kHi = Seconds(60.0);
  // Unit suffixes are mandatory: a bare number would silently mean different
  // things to different flags.
  EXPECT_EXIT(cli::ParseDuration("--t", "500", kLo, kHi), testing::ExitedWithCode(1),
              "invalid value for --t");
  EXPECT_EXIT(cli::ParseDuration("--t", "banana", kLo, kHi), testing::ExitedWithCode(1),
              "not a duration");
  EXPECT_EXIT(cli::ParseDuration("--t", "5m", kLo, kHi), testing::ExitedWithCode(1),
              "unknown unit");
  EXPECT_EXIT(cli::ParseDuration("--t", "-5ms", kLo, kHi), testing::ExitedWithCode(1),
              "nonnegative");
  EXPECT_EXIT(cli::ParseDuration("--t", "1e300s", kLo, kHi), testing::ExitedWithCode(1),
              "invalid value for --t");
  // In-range enforcement: below lo and above hi both fail.
  EXPECT_EXIT(cli::ParseDuration("--t", "1us", kLo, kHi), testing::ExitedWithCode(1),
              "must be in");
  EXPECT_EXIT(cli::ParseDuration("--t", "90s", kLo, kHi), testing::ExitedWithCode(1),
              "must be in");
}

TimeNs SteadyNow() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TEST(ParsePositiveDurationTest, AcceptsPositiveRejectsZeroAndNegative) {
  EXPECT_EQ(cli::ParsePositiveDuration("--t", "5ms", Seconds(60.0)), Milliseconds(5));
  EXPECT_EQ(cli::ParsePositiveDuration("--t", "1ns", Seconds(60.0)), 1);
  // Zero parses as a duration but is rejected with a *specific* message — a
  // zero batch window or rpc timeout silently busy-loops / never waits.
  EXPECT_EXIT(cli::ParsePositiveDuration("--t", "0ms", Seconds(60.0)),
              testing::ExitedWithCode(1), "must be a positive duration");
  EXPECT_EXIT(cli::ParsePositiveDuration("--t", "0s", Seconds(60.0)),
              testing::ExitedWithCode(1), "must be a positive duration");
  EXPECT_EXIT(cli::ParsePositiveDuration("--t", "-5ms", Seconds(60.0)),
              testing::ExitedWithCode(1), "nonnegative");
  EXPECT_EXIT(cli::ParsePositiveDuration("--t", "banana", Seconds(60.0)),
              testing::ExitedWithCode(1), "not a duration");
  EXPECT_EXIT(cli::ParsePositiveDuration("--t", "5", Seconds(60.0)),
              testing::ExitedWithCode(1), "unknown unit");
  EXPECT_EXIT(cli::ParsePositiveDuration("--t", "90s", Seconds(60.0)),
              testing::ExitedWithCode(1), "must be in");
}

TEST(BackoffTest, DeterministicGivenSeedAndDecorrelatedAcrossSeeds) {
  const BackoffConfig config{Milliseconds(10), Seconds(2.0), 2.0, 0.25};
  ExponentialBackoff a(config, 7);
  ExponentialBackoff b(config, 7);
  ExponentialBackoff c(config, 8);
  bool diverged = false;
  for (int i = 0; i < 16; ++i) {
    const TimeNs da = a.NextDelay();
    EXPECT_EQ(da, b.NextDelay()) << "same seed must give the same schedule";
    if (da != c.NextDelay()) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged) << "different seeds should jitter differently";
}

TEST(BackoffTest, GrowsWithinJitterBoundsUpToCap) {
  const BackoffConfig config{Milliseconds(10), Milliseconds(100), 2.0, 0.25};
  ExponentialBackoff backoff(config, 3);
  // Delay n is base * 2^n before jitter, scaled by a factor in [0.75, 1.25].
  TimeNs expected = config.base;
  for (int i = 0; i < 8; ++i) {
    const TimeNs d = backoff.NextDelay();
    EXPECT_GE(d, static_cast<TimeNs>(static_cast<double>(expected) * 0.75)) << "step " << i;
    EXPECT_LE(d, static_cast<TimeNs>(static_cast<double>(expected) * 1.25)) << "step " << i;
    expected = std::min<TimeNs>(expected * 2, config.cap);
  }
}

TEST(BackoffTest, ResetReturnsToBaseDelay) {
  const BackoffConfig config{Milliseconds(10), Seconds(2.0), 2.0, 0.0};  // no jitter
  ExponentialBackoff backoff(config, 1);
  EXPECT_EQ(backoff.NextDelay(), Milliseconds(10));
  EXPECT_EQ(backoff.NextDelay(), Milliseconds(20));
  backoff.Reset();
  EXPECT_EQ(backoff.NextDelay(), Milliseconds(10));
}

TEST(ChaosScheduleTest, ParseSortsAndRoundTripsThroughToString) {
  // Deliberately out of order; parse sorts by time.
  const chaos::ChaosSchedule schedule = chaos::ChaosSchedule::Parse(
      "5s@serve.respond.corrupt=1:throw;2s@serve.flush.mid_batch=1;8s@-");
  ASSERT_EQ(schedule.events().size(), 3u);
  EXPECT_EQ(schedule.events()[0].at, Seconds(2.0));
  EXPECT_EQ(schedule.events()[0].spec, "serve.flush.mid_batch=1");
  EXPECT_EQ(schedule.events()[1].at, Seconds(5.0));
  EXPECT_EQ(schedule.events()[2].at, Seconds(8.0));
  EXPECT_TRUE(schedule.events()[2].spec.empty()) << "'-' means disarm";
  EXPECT_EQ(schedule.end(), Seconds(8.0));

  const chaos::ChaosSchedule reparsed = chaos::ChaosSchedule::Parse(schedule.ToString());
  ASSERT_EQ(reparsed.events().size(), schedule.events().size());
  for (size_t i = 0; i < schedule.events().size(); ++i) {
    EXPECT_EQ(reparsed.events()[i].at, schedule.events()[i].at);
    EXPECT_EQ(reparsed.events()[i].spec, schedule.events()[i].spec);
  }
}

TEST(ChaosScheduleTest, MalformedEventsThrowAtParseTime) {
  EXPECT_THROW(chaos::ChaosSchedule::Parse("nodelimiter"), std::invalid_argument);
  EXPECT_THROW(chaos::ChaosSchedule::Parse("@site=1"), std::invalid_argument);
  EXPECT_THROW(chaos::ChaosSchedule::Parse("banana@site=1"), std::invalid_argument);
  // Failpoint specs are validated eagerly: a typo fails here, not mid-soak.
  EXPECT_THROW(chaos::ChaosSchedule::Parse("2s@notaspec"), std::invalid_argument);
  EXPECT_THROW(chaos::ChaosSchedule::Parse("2s@site=1:teleport"), std::invalid_argument);
}

TEST(ChaosScheduleTest, RandomStormIsSeededAndEndsDisarmed) {
  const TimeNs duration = Seconds(10.0);
  const chaos::ChaosSchedule a = chaos::ChaosSchedule::RandomServeStorm(9, duration,
                                                                        Milliseconds(500));
  const chaos::ChaosSchedule b = chaos::ChaosSchedule::RandomServeStorm(9, duration,
                                                                        Milliseconds(500));
  EXPECT_EQ(a.ToString(), b.ToString()) << "same seed must give the same storm";
  const chaos::ChaosSchedule c = chaos::ChaosSchedule::RandomServeStorm(10, duration,
                                                                        Milliseconds(500));
  EXPECT_NE(a.ToString(), c.ToString());
  ASSERT_GE(a.events().size(), 2u);
  // First event is always a crash (every storm exercises restart+reconnect).
  EXPECT_EQ(a.events().front().spec, "serve.flush.mid_batch=1");
  EXPECT_TRUE(a.events().back().spec.empty()) << "storms must end disarmed";
  EXPECT_EQ(a.end(), duration);
}

TEST(ChaosRunnerTest, AppliesEventsAndSkipsThoseBeforeTheResumeOffset) {
  failpoint::Clear();
  const chaos::ChaosSchedule schedule =
      chaos::ChaosSchedule::Parse("1ms@test.chaos.runner=1:throw");
  {
    chaos::ChaosRunner runner(schedule);
    const TimeNs deadline = SteadyNow() + Seconds(10.0);
    while (runner.applied() == 0 && SteadyNow() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(runner.applied(), 1u);
    EXPECT_TRUE(failpoint::IsArmed("test.chaos.runner"));
  }
  failpoint::Clear();
  {
    // Resuming past the event: a restarted process must not replay it.
    chaos::ChaosRunner runner(schedule, /*offset=*/Seconds(1.0));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_EQ(runner.applied(), 0u);
    EXPECT_FALSE(failpoint::IsArmed("test.chaos.runner"));
  }
}

TEST(FailpointTest, StallActionDelaysTheSiteThenDisarms) {
  failpoint::Configure("test.stall.site=1:stall:50ms");
  const TimeNs t0 = SteadyNow();
  ASTRAEA_FAILPOINT("test.stall.site");
  const TimeNs stalled = SteadyNow() - t0;
  EXPECT_GE(stalled, Milliseconds(50));
  // One-shot: the next hit is free.
  const TimeNs t1 = SteadyNow();
  ASTRAEA_FAILPOINT("test.stall.site");
  EXPECT_LT(SteadyNow() - t1, Milliseconds(50));
  failpoint::Clear();
}

TEST(FailpointTest, ValidateRejectsBadSpecsWithoutArming) {
  EXPECT_THROW(failpoint::Validate("garbage"), std::invalid_argument);
  EXPECT_THROW(failpoint::Validate("site=0"), std::invalid_argument);
  EXPECT_THROW(failpoint::Validate("site=1:stall:banana"), std::invalid_argument);
  failpoint::Validate("site=1:stall:5ms");  // well-formed: no throw, no arm
  EXPECT_FALSE(failpoint::IsArmed("site"));
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(7);
  Rng child = parent.Fork();
  // The child stream must differ from a same-seed parent restart.
  Rng parent2(7);
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (child.Uniform() != parent2.Uniform()) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, DeriveSeedStreamsPairwiseNonOverlapping) {
  // The parallel experiment harness assumes DeriveSeed child streams never
  // collide: 4 streams x 1M indices each must produce 4M distinct seeds.
  constexpr uint64_t kStreams[] = {0, 1, 42, 0xDEADBEEF};
  constexpr size_t kDraws = 1'000'000;
  std::vector<uint64_t> seeds;
  seeds.reserve(4 * kDraws);
  for (uint64_t stream : kStreams) {
    for (size_t i = 0; i < kDraws; ++i) {
      seeds.push_back(Rng::DeriveSeed(stream, i));
    }
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end())
      << "two (stream, index) pairs derived the same seed";
}

TEST(RngTest, DeriveSeedIsPlatformStable) {
  // DeriveSeed is pure 64-bit integer arithmetic (the SplitMix64 finalizer),
  // so its outputs are part of the reproducibility contract: a rep seeded
  // on one machine must mean the same experiment everywhere. Golden first
  // 16 values of each stream.
  constexpr uint64_t kStreams[] = {0, 1, 42, 0xDEADBEEF};
  constexpr uint64_t kGolden[4][16] = {
      {0xE220A8397B1DCDAFULL, 0x6E789E6AA1B965F4ULL, 0x06C45D188009454FULL,
       0xF88BB8A8724C81ECULL, 0x1B39896A51A8749BULL, 0x53CB9F0C747EA2EAULL,
       0x2C829ABE1F4532E1ULL, 0xC584133AC916AB3CULL, 0x3EE5789041C98AC3ULL,
       0xF3B8488C368CB0A6ULL, 0x657EECDD3CB13D09ULL, 0xC2D326E0055BDEF6ULL,
       0x8621A03FE0BBDB7BULL, 0x8E1F7555983AA92FULL, 0xB54E0F1600CC4D19ULL,
       0x84BB3F97971D80ABULL},
      {0x910A2DEC89025CC1ULL, 0xBEEB8DA1658EEC67ULL, 0xF893A2EEFB32555EULL,
       0x71C18690EE42C90BULL, 0x71BB54D8D101B5B9ULL, 0xC34D0BFF90150280ULL,
       0xE099EC6CD7363CA5ULL, 0x85E7BB0F12278575ULL, 0x491718DE357E3DA8ULL,
       0xCB435C8E74616796ULL, 0x6775DC7701564F61ULL, 0x9AFCD44D14CF8BFEULL,
       0x7476CF8A4BAA5DC0ULL, 0x87B341D690D7A28AULL, 0x6F9B6DAE6F4C57A8ULL,
       0x2AC2CE17A5794A3BULL},
      {0xBDD732262FEB6E95ULL, 0x28EFE333B266F103ULL, 0x47526757130F9F52ULL,
       0x581CE1FF0E4AE394ULL, 0x09BC585A244823F2ULL, 0xDE4431FA3C80DB06ULL,
       0x37E9671C45376D5DULL, 0xCCF635EE9E9E2FA4ULL, 0x5705B8770B3D7DD5ULL,
       0x9E54D738297F77AEULL, 0x3474724A775B19BFULL, 0x7E348A0E451650BEULL,
       0x836DED897F3E46E6ULL, 0x851F977347ED6DB7ULL, 0xAA47E31C02E78EDCULL,
       0x341452C54D7C33F2ULL},
      {0x4ADFB90F68C9EB9BULL, 0xDE586A3141A10922ULL, 0x021FBC2F8E1CFC1DULL,
       0x7466CE737BE16790ULL, 0x3BFA8764F685BD1CULL, 0xAB203E503CB55B3FULL,
       0x5A2FDC2BF68CEDB3ULL, 0xB30A4CCF430B1B5AULL, 0x0A90415039BD5985ULL,
       0x26AE50847745EB7EULL, 0xE239ED306D9B1929ULL, 0xFB7D9A8D444D41BCULL,
       0x1BB52E523960D559ULL, 0xCF8631B40292B5D5ULL, 0xF6186C41B838B122ULL,
       0x432497FFB78C1173ULL},
  };
  for (size_t s = 0; s < 4; ++s) {
    for (size_t i = 0; i < 16; ++i) {
      EXPECT_EQ(Rng::DeriveSeed(kStreams[s], i), kGolden[s][i])
          << "stream " << kStreams[s] << " index " << i;
    }
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(JainIndexTest, EqualAllocationIsOne) {
  const double values[] = {5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(JainIndex(values), 1.0);
}

TEST(JainIndexTest, SingleHogIsOneOverN) {
  const double values[] = {10.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(JainIndex(values), 0.25);
}

TEST(JainIndexTest, EmptyAndZeroAreConventionallyFair) {
  EXPECT_DOUBLE_EQ(JainIndex({}), 1.0);
  const double zeros[] = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(JainIndex(zeros), 1.0);
}

TEST(JainIndexTest, ScaleInvariant) {
  const double a[] = {1.0, 2.0, 3.0};
  const double b[] = {10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(JainIndex(a), JainIndex(b));
}

TEST(StatsTest, MeanAndStdDev) {
  const double values[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(values), 5.0);
  EXPECT_DOUBLE_EQ(StdDev(values), 2.0);  // classic textbook example
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 2.5);
}

// Regression: out-of-range p used to cast a negative rank to size_t (UB) and
// read past the end for p > 100. It now saturates at the extremes.
TEST(StatsTest, PercentileClampsOutOfRangeP) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(Percentile(v, -50.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1000.0), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, -0.0001), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0001), 3.0);
}

TEST(RunningStatTest, MatchesBatchComputation) {
  RunningStat rs;
  const double values[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double v : values) {
    rs.Add(v);
  }
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.stddev(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(EmpiricalCdfTest, FractionsAndQuantiles) {
  EmpiricalCdf cdf({3.0, 1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.Fraction(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.Fraction(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.Fraction(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 2.5);
}

TEST(TimeSeriesTest, WindowedMean) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) {
    ts.Add(Seconds(i), static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(ts.MeanOver(Seconds(2.0), Seconds(5.0)), 3.0);  // samples 2,3,4
  EXPECT_DOUBLE_EQ(ts.MeanOver(Seconds(100.0), Seconds(200.0)), 0.0);
}

TEST(TimeSeriesTest, ValueAt) {
  TimeSeries ts;
  ts.Add(Seconds(1.0), 10.0);
  ts.Add(Seconds(2.0), 20.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(Seconds(0.5)), 0.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(Seconds(1.5)), 10.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(Seconds(3.0)), 20.0);
}

TEST(TimeSeriesTest, FirstStableEntryFindsConvergence) {
  TimeSeries ts;
  // Ramp 0..9 then stable at 10.
  for (int i = 0; i < 10; ++i) {
    ts.Add(Seconds(i), static_cast<double>(i));
  }
  for (int i = 10; i < 20; ++i) {
    ts.Add(Seconds(i), 10.0);
  }
  const TimeNs entry = ts.FirstStableEntry(0, 10.0, 0.1, Seconds(3.0));
  EXPECT_EQ(entry, Seconds(9.0));  // 9.0 is within 10% of 10.0
}

TEST(TimeSeriesTest, FirstStableEntryRejectsTransients) {
  TimeSeries ts;
  ts.Add(Seconds(1.0), 10.0);  // brief touch
  ts.Add(Seconds(2.0), 50.0);  // leaves the band
  for (int i = 3; i < 10; ++i) {
    ts.Add(Seconds(i), 10.0);
  }
  const TimeNs entry = ts.FirstStableEntry(0, 10.0, 0.1, Seconds(3.0));
  EXPECT_EQ(entry, Seconds(3.0));
}

TEST(SerializationTest, RoundTrip) {
  const std::string path = "/tmp/astraea_serialization_test.bin";
  {
    BinaryWriter w(path);
    w.WriteU32(0xDEADBEEF);
    w.WriteF64(3.25);
    w.WriteString("hello");
    w.WriteFloatVec({1.0f, 2.0f, 3.0f});
  }
  BinaryReader r(path);
  EXPECT_EQ(r.ReadU32(), 0xDEADBEEFu);
  EXPECT_DOUBLE_EQ(r.ReadF64(), 3.25);
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_EQ(r.ReadFloatVec(), (std::vector<float>{1.0f, 2.0f, 3.0f}));
  std::filesystem::remove(path);
}

TEST(SerializationTest, TruncatedFileThrows) {
  const std::string path = "/tmp/astraea_serialization_trunc.bin";
  {
    BinaryWriter w(path);
    w.WriteU32(1);
  }
  BinaryReader r(path);
  r.ReadU32();
  EXPECT_THROW(r.ReadU64(), SerializationError);
  std::filesystem::remove(path);
}

TEST(WindowedFilterTest, MinTracksWindow) {
  WindowedMin<double> filter(Seconds(10.0));
  filter.Update(Seconds(0.0), 5.0);
  filter.Update(Seconds(1.0), 3.0);
  filter.Update(Seconds(2.0), 8.0);
  EXPECT_DOUBLE_EQ(filter.Get(Seconds(2.0), 99.0), 3.0);
  // The 3.0 sample expires after 10s; 8.0 becomes the min.
  EXPECT_DOUBLE_EQ(filter.Get(Seconds(12.0), 99.0), 8.0);
}

TEST(WindowedFilterTest, MaxTracksWindow) {
  WindowedMax<double> filter(Seconds(5.0));
  filter.Update(Seconds(0.0), 10.0);
  filter.Update(Seconds(1.0), 4.0);
  EXPECT_DOUBLE_EQ(filter.Get(Seconds(1.0), 0.0), 10.0);
  EXPECT_DOUBLE_EQ(filter.Get(Seconds(6.0), 0.0), 4.0);
}

TEST(WindowedFilterTest, EmptyReturnsFallback) {
  WindowedMin<int> filter(Seconds(1.0));
  EXPECT_EQ(filter.Get(Seconds(0.0), 42), 42);
}

TEST(WindowedFilterTest, SampleExactlyWindowOldIsRetained) {
  // The expiry comparison is strict (front().first < now - window): a sample
  // taken exactly `window` ago is still in the window. Callers that Update
  // and read at a cadence equal to the window must not see their freshest
  // surviving sample flap out.
  WindowedMin<double> filter(Seconds(10.0));
  filter.Update(Seconds(0.0), 3.0);
  EXPECT_DOUBLE_EQ(filter.Get(Seconds(10.0), 99.0), 3.0);   // age == window: kept
  EXPECT_DOUBLE_EQ(filter.Peek(Seconds(10.0), 99.0), 3.0);
  EXPECT_DOUBLE_EQ(filter.Get(Seconds(10.0) + 1, 99.0), 99.0);  // one ns older: expired
}

TEST(WindowedFilterTest, PeekDoesNotMutate) {
  WindowedMin<double> filter(Seconds(5.0));
  filter.Update(Seconds(0.0), 2.0);
  filter.Update(Seconds(1.0), 7.0);
  // Far in the future every sample has aged out: Peek reports the fallback
  // but must leave the deque untouched, so a subsequent Peek at an earlier
  // time still sees the samples. Get would have dropped them.
  EXPECT_DOUBLE_EQ(filter.Peek(Seconds(100.0), 42.0), 42.0);
  EXPECT_FALSE(filter.empty());
  EXPECT_DOUBLE_EQ(filter.Peek(Seconds(3.0), 42.0), 2.0);
  EXPECT_DOUBLE_EQ(filter.Get(Seconds(100.0), 42.0), 42.0);
  EXPECT_TRUE(filter.empty());
}

TEST(WindowedFilterTest, PeekSkipsExpiredPrefixWithoutRemoving) {
  WindowedMin<double> filter(Seconds(10.0));
  filter.Update(Seconds(0.0), 1.0);   // the min, but stale at t=15
  filter.Update(Seconds(8.0), 4.0);   // still live at t=15
  EXPECT_DOUBLE_EQ(filter.Peek(Seconds(15.0), 99.0), 4.0);
  EXPECT_FALSE(filter.empty());
  EXPECT_DOUBLE_EQ(filter.Get(Seconds(15.0), 99.0), 4.0);
}

TEST(WindowedFilterTest, ShrunkWindowExpiresStaleSamplesOnNextCall) {
  WindowedMin<double> filter(Seconds(60.0));
  filter.Update(Seconds(0.0), 1.0);
  filter.Update(Seconds(5.0), 6.0);
  EXPECT_DOUBLE_EQ(filter.Get(Seconds(10.0), 99.0), 1.0);
  // Shrinking the window must actually retire samples that are stale under
  // the new width the next time the filter is consulted.
  filter.set_window(Seconds(2.0));
  EXPECT_DOUBLE_EQ(filter.Peek(Seconds(10.0), 99.0), 99.0);  // both now stale
  EXPECT_DOUBLE_EQ(filter.Get(Seconds(10.0), 99.0), 99.0);
  EXPECT_TRUE(filter.empty());
  filter.Update(Seconds(11.0), 3.0);
  EXPECT_DOUBLE_EQ(filter.Get(Seconds(12.0), 99.0), 3.0);
}

// Property sweep: Jain index is bounded in [1/n, 1] for positive allocations.
class JainPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(JainPropertyTest, BoundedByOneOverN) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n));
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> values(n);
    for (auto& v : values) {
      v = rng.Uniform(0.01, 100.0);
    }
    const double j = JainIndex(values);
    EXPECT_GE(j, 1.0 / n - 1e-12);
    EXPECT_LE(j, 1.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, JainPropertyTest, ::testing::Values(2, 3, 5, 10, 50));

}  // namespace
}  // namespace astraea
