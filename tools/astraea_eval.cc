// astraea_eval: a scorecard for an Astraea policy across the paper's
// canonical scenarios. Useful when iterating on training:
//
//   astraea_eval                          # distilled / default policy
//   astraea_eval --model models/foo.ckpt  # a specific checkpoint
//   astraea_eval --serve-socket /tmp/astraea.sock [--rpc-timeout 20ms]
//                [--connect-timeout 500ms]
//                                         # score decisions served by
//                                         # astraea_serve over shm IPC
//
// Scenarios: single-flow utilization, 3-flow fairness/convergence,
// RTT-heterogeneous fairness, CUBIC coexistence, cellular trace, satellite.

#include <cstdio>
#include <cstring>
#include <string>

#include "bench/harness/cli_scenario.h"
#include "bench/harness/metrics.h"
#include "bench/harness/scenario.h"
#include "bench/harness/table.h"
#include "src/util/cli_flags.h"

namespace astraea {
namespace {

struct Score {
  std::string name;
  std::string value;
  std::string target;
  bool pass;
};

int Main(int argc, char** argv) {
  PolicyCliOptions policy_opts;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--model") == 0) {
      policy_opts.model = next("--model");
    } else if (std::strcmp(argv[i], "--serve-socket") == 0) {
      policy_opts.serve_socket = next("--serve-socket");
    } else if (std::strcmp(argv[i], "--rpc-timeout") == 0) {
      policy_opts.rpc_timeout =
          cli::ParsePositiveDuration("--rpc-timeout", next("--rpc-timeout"), Seconds(60.0));
    } else if (std::strcmp(argv[i], "--connect-timeout") == 0) {
      policy_opts.connect_timeout =
          cli::ParsePositiveDuration("--connect-timeout", next("--connect-timeout"), Seconds(60.0));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }
  SchemeOptions options;
  options.astraea_policy = MakeCliPolicy(policy_opts);
  std::printf("policy under evaluation: %s\n\n", options.astraea_policy->name().c_str());

  std::vector<Score> scores;
  auto add = [&scores](const std::string& name, double value, double floor, bool higher_is_better,
                       const char* fmt = "%.3f") {
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, value);
    char tgt[64];
    std::snprintf(tgt, sizeof(tgt), higher_is_better ? ">= %.2f" : "<= %.2f", floor);
    scores.push_back({name, buf, tgt, higher_is_better ? value >= floor : value <= floor});
  };

  {  // 1. Single flow: utilization + latency on 100 Mbps / 30 ms / 1 BDP.
    DumbbellConfig config;
    DumbbellScenario scenario(config);
    scenario.scheme_options() = options;
    scenario.AddFlow("astraea", 0);
    scenario.Run(Seconds(20.0));
    add("single-flow utilization", LinkUtilization(scenario.network(), 0, Seconds(5.0), Seconds(20.0)),
        0.9, true);
    add("single-flow RTT inflation (x base)",
        MeanRttMs(scenario.network(), Seconds(5.0), Seconds(20.0)) / 30.0, 1.5, false);
  }
  {  // 2. Three staggered flows: fairness + convergence of the last arrival.
    DumbbellConfig config;
    DumbbellScenario scenario(config);
    scenario.scheme_options() = options;
    for (int i = 0; i < 3; ++i) {
      scenario.AddFlow("astraea", Seconds(10.0 * i));
    }
    scenario.Run(Seconds(45.0));
    add("3-flow avg Jain", AverageJain(scenario.network(), Seconds(20.0), Seconds(45.0), Milliseconds(500)),
        0.95, true);
    const ConvergenceMeasurement m = MeasureConvergence(
        scenario.network(), 2, Seconds(20.0), 100.0 / 3.0, 0.10, Seconds(1.0), Seconds(45.0));
    add("3-flow convergence time (s)",
        m.convergence_time < 0 ? 99.0 : ToSeconds(m.convergence_time), 5.0, false, "%.2f");
    add("3-flow stability (Mbps)", m.stability_mbps, 3.0, false, "%.2f");
  }
  {  // 3. RTT heterogeneity: 30 ms vs 150 ms flows.
    DumbbellConfig config;
    config.buffer_bdp = 0.5;
    DumbbellScenario scenario(config);
    scenario.scheme_options() = options;
    scenario.AddFlow("astraea", 0, -1, 0);
    scenario.AddFlow("astraea", 0, -1, Milliseconds(120));
    scenario.Run(Seconds(40.0));
    add("RTT-heterogeneous Jain",
        JainIndex(FlowMeanThroughputs(scenario.network(), Seconds(20.0), Seconds(40.0))), 0.85,
        true);
  }
  {  // 4. Coexistence with CUBIC.
    DumbbellConfig config;
    DumbbellScenario scenario(config);
    scenario.scheme_options() = options;
    scenario.AddFlow("astraea", 0);
    scenario.AddFlow("cubic", 0);
    scenario.Run(Seconds(40.0));
    const auto thr = FlowMeanThroughputs(scenario.network(), Seconds(10.0), Seconds(40.0));
    add("vs-CUBIC throughput ratio", thr[0] / std::max(thr[1], 0.1), 0.1, true, "%.2f");
  }
  {  // 5. Cellular trace tracking.
    Rng rng(5);
    DumbbellConfig config;
    config.base_rtt = Milliseconds(40);
    config.buffer_bdp = 20.0;
    config.trace = std::make_shared<RateTrace>(
        MakeLteLikeTrace(Seconds(30.0), Milliseconds(20), Mbps(1), Mbps(60), &rng));
    DumbbellScenario scenario(config);
    scenario.scheme_options() = options;
    scenario.AddFlow("astraea", 0);
    scenario.Run(Seconds(30.0));
    add("cellular utilization", LinkUtilization(scenario.network(), 0, Seconds(2.0), Seconds(30.0)),
        0.6, true);
    // Tail-delay spikes during deep capacity plunges are partly physical on a
    // 20xBDP buffer; what matters is staying far below the buffer-filling
    // schemes (25-30x on this workload).
    add("cellular p95 RTT (x base)", P95RttMs(scenario.network(), Seconds(2.0), Seconds(30.0)) / 40.0,
        8.0, false, "%.2f");
  }
  {  // 6. Satellite.
    DumbbellConfig config;
    config.bandwidth = Mbps(42);
    config.base_rtt = Milliseconds(800);
    config.random_loss = 0.0074;
    DumbbellScenario scenario(config);
    scenario.scheme_options() = options;
    scenario.AddFlow("astraea", 0);
    scenario.Run(Seconds(60.0));
    add("satellite utilization", LinkUtilization(scenario.network(), 0, Seconds(15.0), Seconds(60.0)),
        0.6, true);
  }

  ConsoleTable table({"check", "value", "target", "verdict"});
  int passed = 0;
  for (const Score& s : scores) {
    table.AddRow({s.name, s.value, s.target, s.pass ? "PASS" : "FAIL"});
    passed += s.pass ? 1 : 0;
  }
  table.Print();
  std::printf("\n%d / %zu checks passed\n", passed, scores.size());
  return passed == static_cast<int>(scores.size()) ? 0 : 1;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
