// astraea_net — the real-packet UDP data plane CLI (DESIGN.md §13).
//
// Subcommands:
//   recv      bind a UDP port and acknowledge incoming data frames
//   send      transfer N bytes to a receiver, cwnd/pacing driven by a
//             congestion controller (any scheme from the comparison set;
//             astraea loads the default checkpoint or attaches to a running
//             astraea_serve sidecar via --serve-socket)
//   emulate   stand-alone WAN link emulator (UDP relay: rate, delay,
//             droptail buffer, random loss)
//   loopback  one-process end-to-end run: receiver + optional emulator +
//             sender over 127.0.0.1, with a JSON summary on stdout
//
// Quickstart (two shells, or see `loopback` for one):
//   ./astraea_net recv --port 9000
//   ./astraea_net send --host 127.0.0.1 --port 9000 --bytes 67108864
//
// Exit code: 0 on success; for transfers, nonzero when the transfer did not
// complete or any frame arrived corrupt.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "src/core/schemes.h"
#include "src/net/loopback.h"
#include "src/net/udp_receiver.h"
#include "src/net/udp_sender.h"
#include "src/serve/remote_policy.h"
#include "src/util/cli_flags.h"

namespace astraea {
namespace {

using cli::ParseDouble;
using cli::ParseDuration;
using cli::ParseInt;
using cli::ParsePositiveDuration;
using cli::ParseU64;

int Usage() {
  std::fprintf(
      stderr,
      "usage: astraea_net <recv|send|emulate|loopback> [flags]\n"
      "  recv     --port N [--ack-every N] [--ack-delay DUR] [--idle-timeout DUR]\n"
      "           [--no-verify-payload]\n"
      "  send     --host A.B.C.D --port N --bytes N [--scheme NAME] [--model PATH]\n"
      "           [--serve-socket PATH] [--rpc-timeout DUR] [--mss N] [--mtp DUR]\n"
      "           [--max-runtime DUR] [--flow-id N]\n"
      "  emulate  --forward-port N [--listen-port N] [--forward-host A.B.C.D]\n"
      "           [--rate-mbps R] [--rtt DUR] [--buffer-bytes N] [--loss P] [--seed N]\n"
      "  loopback --bytes N [--scheme NAME] [--model PATH] [--serve-socket PATH]\n"
      "           [--rate-mbps R] [--rtt DUR] [--buffer-bytes N] [--loss P]\n"
      "           [--mss N] [--max-runtime DUR] [--ack-every N] [--seed N]\n");
  return 2;
}

// Builds the controller factory for `scheme`. The astraea policy resolves
// through --serve-socket (self-healing sidecar attach) or --model /
// ASTRAEA_MODEL / the default checkpoint path. Real single-flow paths own
// their RTT floor, so the epoch-drain skip on a fresh floor is enabled
// (see AstraeaHyperparameters::skip_drain_on_fresh_floor).
CcFactory MakeCc(const std::string& scheme, const std::string& model,
                 const std::string& serve_socket, TimeNs rpc_timeout, SchemeOptions* options) {
  if (!serve_socket.empty()) {
    options->astraea_policy =
        serve::MakeServedPolicy(serve_socket, rpc_timeout, LoadDefaultPolicy(model));
  } else {
    options->astraea_policy = LoadDefaultPolicy(model);
  }
  options->astraea_hp.skip_drain_on_fresh_floor = true;
  return MakeSchemeFactory(scheme, options);
}

void PrintTransferJson(const net::LoopbackResult& result) {
  const net::UdpSenderReport& s = result.sender;
  const net::UdpReceiverReport& r = result.receiver;
  std::printf("{\n");
  std::printf("  \"completed\": %s,\n", s.completed ? "true" : "false");
  std::printf("  \"fin_acked\": %s,\n", s.fin_acked ? "true" : "false");
  std::printf("  \"elapsed_s\": %.3f,\n", ToSeconds(s.elapsed));
  std::printf("  \"sender\": {\"bytes_sent\": %" PRIu64 ", \"bytes_acked\": %" PRIu64
              ", \"bytes_lost\": %" PRIu64 ", \"goodput_mbps\": %.3f, \"rtt_min_ms\": %.3f, "
              "\"rtt_p50_ms\": %.3f, \"rtt_p95_ms\": %.3f, \"rto_fires\": %" PRIu64
              ", \"corrupt_acks\": %" PRIu64 ", \"mtp_ticks\": %" PRIu64 "},\n",
              s.bytes_sent, s.bytes_acked, s.bytes_lost, s.goodput_bps() / 1e6, s.rtt_min_ms,
              s.rtt_p50_ms, s.rtt_p95_ms, s.rto_fires, s.corrupt_acks, s.mtp_ticks);
  std::printf("  \"receiver\": {\"received_bytes\": %" PRIu64 ", \"received_frames\": %" PRIu64
              ", \"corrupt_frames\": %" PRIu64 ", \"duplicate_frames\": %" PRIu64
              ", \"acks_sent\": %" PRIu64 ", \"goodput_mbps\": %.3f},\n",
              r.received_bytes, r.received_frames, r.corrupt_frames, r.duplicate_frames,
              r.acks_sent, r.goodput_bps() / 1e6);
  std::printf("  \"emulator\": {\"forwarded\": %" PRIu64 ", \"dropped_buffer\": %" PRIu64
              ", \"dropped_random\": %" PRIu64 "}\n",
              result.emulator.forwarded_datagrams, result.emulator.dropped_buffer,
              result.emulator.dropped_random);
  std::printf("}\n");
}

int RunRecv(int argc, char** argv) {
  net::UdpReceiverConfig config;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (flag == "--no-verify-payload") {
      config.verify_payload = false;
      continue;
    }
    if (value == nullptr) {
      return Usage();
    }
    ++i;
    if (flag == "--port") {
      config.port = static_cast<uint16_t>(ParseInt("--port", value, 1, 65535));
    } else if (flag == "--ack-every") {
      config.ack_every = static_cast<uint32_t>(ParseInt("--ack-every", value, 1, 64));
    } else if (flag == "--ack-delay") {
      config.ack_delay = ParsePositiveDuration("--ack-delay", value, Seconds(1.0));
    } else if (flag == "--idle-timeout") {
      config.idle_timeout = ParseDuration("--idle-timeout", value, 0, Seconds(3600.0));
    } else {
      return Usage();
    }
  }
  net::UdpReceiver receiver(config);
  if (!receiver.Bind()) {
    std::fprintf(stderr, "astraea_net recv: bind failed\n");
    return 1;
  }
  std::fprintf(stderr, "astraea_net recv: listening on UDP port %u\n", receiver.port());
  receiver.Run();
  const net::UdpReceiverReport& r = receiver.report();
  std::printf("{\"received_bytes\": %" PRIu64 ", \"received_frames\": %" PRIu64
              ", \"corrupt_frames\": %" PRIu64 ", \"duplicate_frames\": %" PRIu64
              ", \"acks_sent\": %" PRIu64 ", \"fin_received\": %s, \"goodput_mbps\": %.3f}\n",
              r.received_bytes, r.received_frames, r.corrupt_frames, r.duplicate_frames,
              r.acks_sent, r.fin_received ? "true" : "false", r.goodput_bps() / 1e6);
  return r.corrupt_frames == 0 ? 0 : 1;
}

int RunSend(int argc, char** argv) {
  net::UdpSenderConfig config;
  std::string scheme = "astraea";
  std::string model;
  std::string serve_socket;
  TimeNs rpc_timeout = Milliseconds(20);
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const char* value = argv[i + 1];
    if (flag == "--host") {
      config.host = value;
    } else if (flag == "--port") {
      config.port = static_cast<uint16_t>(ParseInt("--port", value, 1, 65535));
    } else if (flag == "--bytes") {
      config.total_bytes = ParseU64("--bytes", value);
    } else if (flag == "--scheme") {
      scheme = value;
    } else if (flag == "--model") {
      model = value;
    } else if (flag == "--serve-socket") {
      serve_socket = value;
    } else if (flag == "--rpc-timeout") {
      rpc_timeout = ParsePositiveDuration("--rpc-timeout", value, Seconds(1.0));
    } else if (flag == "--mss") {
      config.mss = static_cast<uint32_t>(
          ParseInt("--mss", value, static_cast<int64_t>(net::kDataHeaderBytes) + 1, 65000));
    } else if (flag == "--mtp") {
      config.mtp = ParsePositiveDuration("--mtp", value, Seconds(10.0));
    } else if (flag == "--max-runtime") {
      config.max_runtime = ParseDuration("--max-runtime", value, 0, Seconds(3600.0));
    } else if (flag == "--flow-id") {
      config.flow_id = static_cast<uint32_t>(ParseInt("--flow-id", value, 0, INT32_MAX));
    } else {
      return Usage();
    }
  }
  if (config.port == 0) {
    return Usage();
  }
  SchemeOptions options;
  CcFactory factory = MakeCc(scheme, model, serve_socket, rpc_timeout, &options);
  net::UdpSender sender(factory(), config);
  const bool completed = sender.Run();
  const net::UdpSenderReport& s = sender.report();
  std::printf("{\"completed\": %s, \"fin_acked\": %s, \"elapsed_s\": %.3f, "
              "\"bytes_sent\": %" PRIu64 ", \"bytes_acked\": %" PRIu64 ", \"bytes_lost\": %" PRIu64
              ", \"goodput_mbps\": %.3f, \"rtt_min_ms\": %.3f, \"rtt_p50_ms\": %.3f, "
              "\"rtt_p95_ms\": %.3f, \"rto_fires\": %" PRIu64 ", \"corrupt_acks\": %" PRIu64 "}\n",
              s.completed ? "true" : "false", s.fin_acked ? "true" : "false",
              ToSeconds(s.elapsed), s.bytes_sent, s.bytes_acked, s.bytes_lost,
              s.goodput_bps() / 1e6, s.rtt_min_ms, s.rtt_p50_ms, s.rtt_p95_ms, s.rto_fires,
              s.corrupt_acks);
  return completed ? 0 : 1;
}

int RunEmulate(int argc, char** argv) {
  net::LinkEmulatorConfig config;
  double rate_mbps = 0.0;
  TimeNs rtt = 0;
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const char* value = argv[i + 1];
    if (flag == "--listen-port") {
      config.listen_port = static_cast<uint16_t>(ParseInt("--listen-port", value, 1, 65535));
    } else if (flag == "--forward-host") {
      config.forward_host = value;
    } else if (flag == "--forward-port") {
      config.forward_port = static_cast<uint16_t>(ParseInt("--forward-port", value, 1, 65535));
    } else if (flag == "--rate-mbps") {
      rate_mbps = ParseDouble("--rate-mbps", value, 0.0, 1e5);
    } else if (flag == "--rtt") {
      rtt = ParseDuration("--rtt", value, 0, Seconds(10.0));
    } else if (flag == "--buffer-bytes") {
      config.buffer_bytes = ParseU64("--buffer-bytes", value);
    } else if (flag == "--loss") {
      config.random_loss = ParseDouble("--loss", value, 0.0, 1.0);
    } else if (flag == "--seed") {
      config.seed = ParseU64("--seed", value);
    } else {
      return Usage();
    }
  }
  if (config.forward_port == 0) {
    return Usage();
  }
  config.rate = Mbps(rate_mbps);
  config.one_way_delay = rtt / 2;
  net::LinkEmulator emulator(config);
  if (!emulator.Start()) {
    std::fprintf(stderr, "astraea_net emulate: start failed\n");
    return 1;
  }
  std::fprintf(stderr, "astraea_net emulate: relaying UDP port %u -> %s:%u (Ctrl-C to stop)\n",
               emulator.port(), config.forward_host.c_str(), config.forward_port);
  ::pause();
  emulator.Stop();
  return 0;
}

int RunLoopback(int argc, char** argv) {
  net::LoopbackConfig config;
  config.sender.total_bytes = 8 << 20;
  std::string scheme = "astraea";
  std::string model;
  std::string serve_socket;
  TimeNs rpc_timeout = Milliseconds(20);
  double rate_mbps = 0.0;
  TimeNs rtt = 0;
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const char* value = argv[i + 1];
    if (flag == "--bytes") {
      config.sender.total_bytes = ParseU64("--bytes", value);
    } else if (flag == "--scheme") {
      scheme = value;
    } else if (flag == "--model") {
      model = value;
    } else if (flag == "--serve-socket") {
      serve_socket = value;
    } else if (flag == "--rpc-timeout") {
      rpc_timeout = ParsePositiveDuration("--rpc-timeout", value, Seconds(1.0));
    } else if (flag == "--rate-mbps") {
      rate_mbps = ParseDouble("--rate-mbps", value, 0.0, 1e5);
    } else if (flag == "--rtt") {
      rtt = ParseDuration("--rtt", value, 0, Seconds(10.0));
    } else if (flag == "--buffer-bytes") {
      config.emulator.buffer_bytes = ParseU64("--buffer-bytes", value);
    } else if (flag == "--loss") {
      config.emulator.random_loss = ParseDouble("--loss", value, 0.0, 1.0);
    } else if (flag == "--mss") {
      config.sender.mss = static_cast<uint32_t>(
          ParseInt("--mss", value, static_cast<int64_t>(net::kDataHeaderBytes) + 1, 65000));
    } else if (flag == "--max-runtime") {
      config.sender.max_runtime = ParseDuration("--max-runtime", value, 0, Seconds(3600.0));
    } else if (flag == "--ack-every") {
      config.receiver.ack_every = static_cast<uint32_t>(ParseInt("--ack-every", value, 1, 64));
    } else if (flag == "--seed") {
      config.emulator.seed = ParseU64("--seed", value);
    } else {
      return Usage();
    }
  }
  config.shaped = rate_mbps > 0.0 || rtt > 0 || config.emulator.random_loss > 0.0 ||
                  config.emulator.buffer_bytes > 0;
  config.emulator.rate = Mbps(rate_mbps);
  config.emulator.one_way_delay = rtt / 2;
  SchemeOptions options;
  CcFactory factory = MakeCc(scheme, model, serve_socket, rpc_timeout, &options);
  config.make_cc = [&factory] { return factory(); };

  const net::LoopbackResult result = net::RunLoopbackTransfer(config);
  if (!result.ok) {
    std::fprintf(stderr, "astraea_net loopback: %s\n", result.error.c_str());
    return 1;
  }
  PrintTransferJson(result);
  const bool clean = result.sender.completed && result.receiver.corrupt_frames == 0;
  return clean ? 0 : 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  if (command == "recv") {
    return RunRecv(argc, argv);
  }
  if (command == "send") {
    return RunSend(argc, argv);
  }
  if (command == "emulate") {
    return RunEmulate(argc, argv);
  }
  if (command == "loopback") {
    return RunLoopback(argc, argv);
  }
  return Usage();
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
