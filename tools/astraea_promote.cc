// astraea_promote: checkpoint promotion gate CLI (DESIGN.md §14).
//
//   astraea_promote --candidate new.ckpt --incumbent models/astraea_policy.ckpt
//                   [--install] [--json report.json]
//                   [--suite=golden|universe] [--traces DIR]
//
// Scores the candidate against the incumbent on the golden scenario suite
// (utilization, Jain fairness, p95 delay, loss — see src/train/promotion.h).
// --suite=universe swaps in the scenario-universe gate (shallow-buffer ECN,
// cellular trace replay, contested link; UniverseGateSuite) for candidates
// that must also hold up outside the paper's dumbbells.
// Without --install this is a dry run: the verdict is printed and nothing is
// written. With --install, an accepted candidate atomically replaces the
// incumbent file (tmp + fsync + rename), which is exactly the artifact
// astraea_serve hot-reloads on SIGHUP.
//
// Exit codes: 0 accept, 2 reject, 1 error (unreadable candidate, I/O).

#include <cstdio>
#include <cstring>
#include <string>

#include "src/train/promotion.h"

#ifndef ASTRAEA_SOURCE_DIR
#define ASTRAEA_SOURCE_DIR "."
#endif

namespace astraea {
namespace {

int Main(int argc, char** argv) {
  std::string candidate;
  std::string incumbent;
  std::string json_path;
  std::string suite = "golden";
  std::string traces = std::string(ASTRAEA_SOURCE_DIR) + "/traces";
  bool install = false;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--candidate") == 0) {
      candidate = next();
    } else if (std::strcmp(argv[i], "--incumbent") == 0) {
      incumbent = next();
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = next();
    } else if (std::strcmp(argv[i], "--install") == 0) {
      install = true;
    } else if (std::strcmp(argv[i], "--suite") == 0) {
      suite = next();
    } else if (std::strncmp(argv[i], "--suite=", 8) == 0) {
      suite = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--traces") == 0) {
      traces = next();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }
  if (candidate.empty() || incumbent.empty()) {
    std::fprintf(stderr,
                 "usage: astraea_promote --candidate PATH --incumbent PATH"
                 " [--install] [--json PATH] [--suite=golden|universe] [--traces DIR]\n");
    return 1;
  }
  GateOptions gate_options;
  if (suite == "universe") {
    gate_options.suite = UniverseGateSuite(traces);
  } else if (suite != "golden") {
    std::fprintf(stderr, "unknown suite '%s' (golden or universe)\n", suite.c_str());
    return 1;
  }

  PromotionGate gate(std::move(gate_options));
  GateReport report;
  try {
    report = gate.CompareFiles(candidate, incumbent);
  } catch (const SerializationError& e) {
    std::fprintf(stderr, "promotion gate error: %s\n", e.what());
    return 1;
  }

  const std::string json = report.ToJson();
  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "%s\n", json.c_str());
    std::fclose(out);
  }

  for (const GateScenarioResult& r : report.scenarios) {
    std::printf("  %-8s candidate %+.4f  incumbent %+.4f  (util %.3f/%.3f, jain %.3f/%.3f,"
                " p95 %.1f/%.1f ms)\n",
                r.name.c_str(), r.candidate.composite, r.incumbent.composite,
                r.candidate.utilization, r.incumbent.utilization, r.candidate.jain,
                r.incumbent.jain, r.candidate.p95_delay_ms, r.incumbent.p95_delay_ms);
  }
  std::printf("totals: candidate %+.4f vs incumbent %+.4f (%d wins, %d losses)\n",
              report.candidate_total, report.incumbent_total, report.wins, report.losses);

  if (!report.accepted) {
    std::printf("verdict: REJECT — %s\n", report.reason.c_str());
    return 2;
  }
  std::printf("verdict: ACCEPT — %s\n", report.reason.c_str());
  if (install) {
    try {
      AtomicInstall(candidate, incumbent);
    } catch (const SerializationError& e) {
      std::fprintf(stderr, "install failed: %s\n", e.what());
      return 1;
    }
    std::printf("installed %s -> %s\n", candidate.c_str(), incumbent.c_str());
  } else {
    std::printf("dry run (pass --install to replace the incumbent)\n");
  }
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
