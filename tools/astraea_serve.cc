// astraea_serve: the out-of-process inference server (paper §4). Senders —
// run_scenario / astraea_eval with --serve-socket, or the Fig. 16 serving
// benchmark — connect over a unix-domain control socket and exchange
// decisions through shared-memory ring pairs; the server batches requests
// across all clients into single forward passes and sheds requests it cannot
// serve before their deadline (admission control, DESIGN.md §12).
//
//   astraea_serve --socket /tmp/astraea.sock --model models/policy.ckpt
//                 [--batch-window 500us] [--max-batch 64] [--shed-margin 1.0]
//                 [--metrics-out serve_metrics.json]
//                 [--supervise] [--max-restarts N]
//                 [--chaos "2s@serve.flush.mid_batch=1;8s@-"]
//
// --supervise forks the serving loop into a child and restarts it whenever it
// dies abnormally, with a jittered crash-loop backoff (--max-restarts bounds
// the budget; default unlimited). --chaos arms a deterministic failpoint
// timeline (src/util/chaos.h format) inside the serving process — under
// supervision, a restarted child resumes the timeline where the crash left
// it instead of replaying from zero.
//
// Signals:
//   SIGHUP          hot-reload the model between batches (forwarded to the
//                   child when supervising). Combined with an atomic symlink
//                   swap of --model, this upgrades the served policy with
//                   zero dropped requests.
//   SIGINT/SIGTERM  graceful shutdown (writes --metrics-out if given).
//
// The model file may be either a raw actor stream (astraea_train --out) or a
// durable CRC-footer checkpoint container.

#include <signal.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "src/serve/inference_server.h"
#include "src/serve/supervisor.h"
#include "src/util/chaos.h"
#include "src/util/cli_flags.h"
#include "src/util/metrics.h"

namespace astraea {
namespace {

serve::InferenceServer* g_server = nullptr;
serve::Supervisor* g_supervisor = nullptr;

void OnSignal(int signum) {
  // All paths are async-signal-safe: atomic stores plus kill(2).
  if (g_supervisor != nullptr) {
    if (signum == SIGHUP) {
      g_supervisor->SignalChild(SIGHUP);
    } else {
      g_supervisor->Stop();
    }
    return;
  }
  if (g_server == nullptr) {
    return;
  }
  if (signum == SIGHUP) {
    g_server->RequestReload();
  } else {
    g_server->Stop();
  }
}

void InstallHandlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnSignal;
  sigaction(SIGHUP, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

// One serving-loop incarnation (the whole process without --supervise; one
// child lifetime with it). `chaos_offset` is how far into the chaos timeline
// this incarnation starts.
int RunServer(const serve::InferenceServerConfig& config, const std::string& metrics_out,
              const chaos::ChaosSchedule& chaos_schedule, TimeNs chaos_offset) {
  // A supervised child inherits the parent's g_supervisor; signals here must
  // go to this incarnation's server, not the stale supervisor copy.
  g_supervisor = nullptr;
  try {
    serve::InferenceServer server(config);
    g_server = &server;
    InstallHandlers();

    std::unique_ptr<chaos::ChaosRunner> chaos_runner;
    if (!chaos_schedule.empty()) {
      chaos_runner = std::make_unique<chaos::ChaosRunner>(chaos_schedule, chaos_offset);
    }

    std::printf("astraea_serve: model %s (input dim %d), socket %s, batch window %s, "
                "max batch %zu, shed margin %.2f\n",
                server.config().model_path.c_str(), server.model_input_dim(),
                server.config().socket_path.c_str(),
                FormatTime(server.config().batch_window).c_str(), server.config().max_batch,
                server.config().shed_margin);
    std::fflush(stdout);
    server.Run();
    g_server = nullptr;

    std::printf("astraea_serve: served %llu decisions (%llu shed); shutting down\n",
                static_cast<unsigned long long>(server.served_total()),
                static_cast<unsigned long long>(server.shed_count()));
    if (!metrics_out.empty()) {
      std::FILE* f = std::fopen(metrics_out.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open --metrics-out file: %s\n", metrics_out.c_str());
        return 1;
      }
      std::fprintf(f, "%s\n", MetricsRegistry::Global().ToJson().c_str());
      std::fclose(f);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "astraea_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}

int Main(int argc, char** argv) {
  serve::InferenceServerConfig config;
  config.socket_path = "/tmp/astraea.sock";
  std::string metrics_out;
  std::string chaos_text;
  bool supervise = false;
  int max_restarts = -1;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--socket") == 0) {
      config.socket_path = next("--socket");
    } else if (std::strcmp(argv[i], "--model") == 0) {
      config.model_path = next("--model");
    } else if (std::strcmp(argv[i], "--batch-window") == 0) {
      config.batch_window =
          cli::ParsePositiveDuration("--batch-window", next("--batch-window"), Seconds(1.0));
    } else if (std::strcmp(argv[i], "--max-batch") == 0) {
      config.max_batch = static_cast<size_t>(
          cli::ParseInt("--max-batch", next("--max-batch"), 1, 4096));
    } else if (std::strcmp(argv[i], "--shed-margin") == 0) {
      config.shed_margin = cli::ParseDouble("--shed-margin", next("--shed-margin"), 0.0, 100.0);
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      metrics_out = next("--metrics-out");
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos_text = next("--chaos");
    } else if (std::strcmp(argv[i], "--supervise") == 0) {
      supervise = true;
    } else if (std::strcmp(argv[i], "--max-restarts") == 0) {
      max_restarts =
          static_cast<int>(cli::ParseInt("--max-restarts", next("--max-restarts"), 0, 1000000));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }
  if (config.model_path.empty()) {
    std::fprintf(stderr, "astraea_serve: --model is required (a trained actor checkpoint, "
                         "e.g. models/astraea_policy_trained.ckpt)\n");
    return 1;
  }
  chaos::ChaosSchedule chaos_schedule;
  if (!chaos_text.empty()) {
    try {
      chaos_schedule = chaos::ChaosSchedule::Parse(chaos_text);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "invalid value for --chaos: %s\n", e.what());
      return 1;
    }
  }

  if (!supervise) {
    return RunServer(config, metrics_out, chaos_schedule, /*chaos_offset=*/0);
  }

  serve::SupervisorConfig sup_config;
  sup_config.max_restarts = max_restarts;
  serve::Supervisor supervisor(sup_config, [&](TimeNs elapsed) {
    return RunServer(config, metrics_out, chaos_schedule, elapsed);
  });
  g_supervisor = &supervisor;
  InstallHandlers();
  std::printf("astraea_serve: supervising (max restarts %s)\n",
              max_restarts < 0 ? "unlimited" : std::to_string(max_restarts).c_str());
  std::fflush(stdout);
  const int status = supervisor.Run();
  g_supervisor = nullptr;
  std::printf("astraea_serve: supervisor exiting (status %d, %llu restarts)\n", status,
              static_cast<unsigned long long>(supervisor.restarts()));
  return status;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
