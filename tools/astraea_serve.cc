// astraea_serve: the out-of-process inference server (paper §4). Senders —
// run_scenario / astraea_eval with --serve-socket, or the Fig. 16 serving
// benchmark — connect over a unix-domain control socket and exchange
// decisions through shared-memory ring pairs; the server batches requests
// across all clients into single forward passes.
//
//   astraea_serve --socket /tmp/astraea.sock --model models/policy.ckpt
//                 [--batch-window 500us] [--max-batch 64]
//                 [--metrics-out serve_metrics.json]
//
// Signals:
//   SIGHUP          hot-reload the model between batches. Combined with an
//                   atomic symlink swap of --model (ln -sfn new.ckpt tmp &&
//                   mv -T tmp policy.ckpt), this upgrades the served policy
//                   with zero dropped requests.
//   SIGINT/SIGTERM  graceful shutdown (writes --metrics-out if given).
//
// The model file may be either a raw actor stream (astraea_train --out) or a
// durable CRC-footer checkpoint container.

#include <signal.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "src/serve/inference_server.h"
#include "src/util/cli_flags.h"
#include "src/util/metrics.h"

namespace astraea {
namespace {

serve::InferenceServer* g_server = nullptr;

void OnSignal(int signum) {
  // Both handlers only store atomic flags — async-signal-safe.
  if (g_server == nullptr) {
    return;
  }
  if (signum == SIGHUP) {
    g_server->RequestReload();
  } else {
    g_server->Stop();
  }
}

int Main(int argc, char** argv) {
  serve::InferenceServerConfig config;
  config.socket_path = "/tmp/astraea.sock";
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--socket") == 0) {
      config.socket_path = next("--socket");
    } else if (std::strcmp(argv[i], "--model") == 0) {
      config.model_path = next("--model");
    } else if (std::strcmp(argv[i], "--batch-window") == 0) {
      config.batch_window = cli::ParseDuration("--batch-window", next("--batch-window"),
                                               Microseconds(1), Seconds(1.0));
    } else if (std::strcmp(argv[i], "--max-batch") == 0) {
      config.max_batch = static_cast<size_t>(
          cli::ParseInt("--max-batch", next("--max-batch"), 1, 4096));
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      metrics_out = next("--metrics-out");
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }
  if (config.model_path.empty()) {
    std::fprintf(stderr, "astraea_serve: --model is required (a trained actor checkpoint, "
                         "e.g. models/astraea_policy_trained.ckpt)\n");
    return 1;
  }

  try {
    serve::InferenceServer server(std::move(config));
    g_server = &server;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = OnSignal;
    sigaction(SIGHUP, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);

    std::printf("astraea_serve: model %s (input dim %d), socket %s, batch window %s, "
                "max batch %zu\n",
                server.config().model_path.c_str(), server.model_input_dim(),
                server.config().socket_path.c_str(),
                FormatTime(server.config().batch_window).c_str(), server.config().max_batch);
    std::fflush(stdout);
    server.Run();
    g_server = nullptr;

    std::printf("astraea_serve: served %llu decisions; shutting down\n",
                static_cast<unsigned long long>(server.served_total()));
    if (!metrics_out.empty()) {
      std::FILE* f = std::fopen(metrics_out.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open --metrics-out file: %s\n", metrics_out.c_str());
        return 1;
      }
      std::fprintf(f, "%s\n", MetricsRegistry::Global().ToJson().c_str());
      std::fclose(f);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "astraea_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
