// astraea_train: offline multi-agent training (paper §3.4 / §4 / Appendix A).
//
//   astraea_train --episodes 80 --out models/astraea_policy.ckpt [--seed 7]
//                 [--episode-len 30] [--envs 4] [--print-config]
//                 [--workers N] [--shards 8] [--randomize]
//                 [--resume models/astraea_policy.ckpt.state-40]
//                 [--checkpoint-every 10] [--keep 3]
//                 [--metrics-out train_metrics.jsonl]
//                 [--promote-against models/astraea_policy.ckpt]
//
// Without --workers, training runs the original serial Learner. With
// --workers N (N >= 1) it runs the vectorized trainer (DESIGN.md §14):
// --envs parallel actor environments on N threads feeding one TD3 learner
// through a sharded replay buffer with a deterministic interleave — results
// are bit-identical for every N, so --workers only changes wall-clock.
// --randomize widens episode sampling from the Table-3 ranges to the full
// scenario-family domain (loss, RED/CoDel, LTE-like rate traces).
//
// --metrics-out appends one JSON object per episode (reward components, TD
// losses, gradient norms, replay occupancy) plus a final registry snapshot —
// the machine-readable twin of the stdout table.
//
// Crash safety: every --checkpoint-every episodes the full training state
// (networks, optimizers, replay buffer, RNG streams, actor cursors) is
// written atomically to "<out>.state-<episode>", keeping the last --keep
// files. --episodes is the TOTAL target, so after a crash, rerunning the
// same command with --resume pointing at the newest state file continues to
// the same end state — bit-identical to a run that was never interrupted.
//
// --promote-against runs the promotion gate (src/train/promotion.h) after
// training: the freshly saved --out candidate is scored against the named
// incumbent on the golden scenario suite and, only on an accept verdict,
// atomically installed over it (the file astraea_serve hot-reloads on
// SIGHUP).

#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <string>

#include "src/core/learner.h"
#include "src/train/promotion.h"
#include "src/train/vectorized_trainer.h"
#include "src/util/cli_flags.h"
#include "src/util/metrics.h"

namespace astraea {
namespace {

struct EpisodePrinter {
  std::FILE* metrics_file = nullptr;
  double best_jain = -1.0;
  std::function<void(const std::string&)> save_policy;   // called on eval improvements
  std::function<std::string(int)> save_state;            // returns the state path
  int checkpoint_every = 10;
  std::string out;

  void operator()(const EpisodeDiagnostics& d) {
    if (metrics_file != nullptr) {
      std::fprintf(metrics_file,
                   "{\"episode\":%d,\"mean_reward\":%.6g,\"r_thr\":%.6g,\"r_lat\":%.6g,"
                   "\"r_loss\":%.6g,\"r_fair\":%.6g,\"r_stab\":%.6g,\"decisions\":%d,"
                   "\"critic_loss\":%.6g,\"actor_objective\":%.6g,\"critic_grad_norm\":%.6g,"
                   "\"actor_grad_norm\":%.6g,\"td3_updates\":%lld,\"replay_size\":%zu,"
                   "\"exploration_noise\":%.6g,\"eval_jain\":%.6g}\n",
                   d.episode, d.env.mean_reward, d.env.mean_r_thr, d.env.mean_r_lat,
                   d.env.mean_r_loss, d.env.mean_r_fair, d.env.mean_r_stab, d.env.decisions,
                   d.td3.critic_loss, d.td3.actor_objective, d.td3.critic_grad_norm,
                   d.td3.actor_grad_norm, static_cast<long long>(d.td3.updates), d.replay_size,
                   d.exploration_noise, d.eval_jain);
      std::fflush(metrics_file);  // each episode survives a later crash
    }
    std::printf("%-8d %-12.4f %-10.4f %-10.3f %-12.5f ", d.episode, d.env.mean_reward,
                d.env.mean_r_fair, d.env.mean_r_thr, d.td3.critic_loss);
    if (d.eval_jain >= 0.0) {
      std::printf("%-10.4f", d.eval_jain);
      if (d.eval_jain > best_jain) {
        best_jain = d.eval_jain;
        save_policy(out);
        std::printf("  [checkpoint saved]");
      }
    }
    if (checkpoint_every > 0 && d.episode % checkpoint_every == 0) {
      std::printf("  [state %s]", save_state(d.episode).c_str());
    }
    std::printf("\n");
    std::fflush(stdout);
  }
};

int RunPromotion(const std::string& candidate, const std::string& incumbent) {
  PromotionGate gate;
  GateReport report;
  try {
    report = gate.CompareFiles(candidate, incumbent);
  } catch (const SerializationError& e) {
    std::fprintf(stderr, "promotion gate error: %s\n", e.what());
    return 1;
  }
  std::printf("promotion gate: %s\n", report.ToJson().c_str());
  if (!report.accepted) {
    std::printf("verdict: REJECT (%s); incumbent %s kept\n", report.reason.c_str(),
                incumbent.c_str());
    return 0;
  }
  try {
    AtomicInstall(candidate, incumbent);
  } catch (const SerializationError& e) {
    std::fprintf(stderr, "install failed: %s\n", e.what());
    return 1;
  }
  std::printf("verdict: ACCEPT (%s); installed %s -> %s\n", report.reason.c_str(),
              candidate.c_str(), incumbent.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  int episodes = 60;
  int env_instances = 1;
  double episode_len_s = 30.0;
  std::string out = "models/astraea_policy.ckpt";
  std::string resume;
  int checkpoint_every = 10;
  int keep = 3;
  uint64_t seed = 7;
  bool print_config = false;
  std::string metrics_out;
  int workers = -1;  // <0: serial Learner path
  int shards = 8;
  bool randomize = false;
  std::string promote_against;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--episodes") == 0) {
      episodes = static_cast<int>(cli::ParseInt("--episodes", next(), 1, 1'000'000));
    } else if (std::strcmp(argv[i], "--episode-len") == 0) {
      episode_len_s = cli::ParseDouble("--episode-len", next(), 0.1, 36000.0);
    } else if (std::strcmp(argv[i], "--envs") == 0) {
      env_instances = static_cast<int>(cli::ParseInt("--envs", next(), 1, 64));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      workers = static_cast<int>(cli::ParseInt("--workers", next(), 1, 256));
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      shards = static_cast<int>(cli::ParseInt("--shards", next(), 1, 1024));
    } else if (std::strcmp(argv[i], "--randomize") == 0) {
      randomize = true;
    } else if (std::strcmp(argv[i], "--promote-against") == 0) {
      promote_against = next();
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out = next();
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = next();
    } else if (std::strcmp(argv[i], "--checkpoint-every") == 0) {
      checkpoint_every = static_cast<int>(cli::ParseInt("--checkpoint-every", next(), 0, 1'000'000));
    } else if (std::strcmp(argv[i], "--keep") == 0) {
      keep = static_cast<int>(cli::ParseInt("--keep", next(), 1, 1000));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = cli::ParseU64("--seed", next());
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      metrics_out = next();
    } else if (std::strcmp(argv[i], "--print-config") == 0) {
      print_config = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }

  if (print_config) {
    LearnerConfig config;
    std::printf("%s", DescribeConfig(config.hp, config.ranges).c_str());
    return 0;
  }

  std::FILE* metrics_file = nullptr;
  if (!metrics_out.empty()) {
    metrics_file = std::fopen(metrics_out.c_str(), "w");
    if (metrics_file == nullptr) {
      std::fprintf(stderr, "cannot open --metrics-out file: %s\n", metrics_out.c_str());
      return 1;
    }
  }

  // Last-K rotation of full-state checkpoints written by this process. Files
  // from a previous (crashed) run are left alone — the one being resumed
  // from must survive, and a rerun regenerates the same episodes anyway.
  std::deque<std::string> state_files;
  auto rotate = [&](const std::string& path) {
    state_files.push_back(path);
    while (static_cast<int>(state_files.size()) > keep) {
      std::remove(state_files.front().c_str());
      state_files.pop_front();
    }
    return path;
  };

  EpisodePrinter printer;
  printer.metrics_file = metrics_file;
  printer.checkpoint_every = checkpoint_every;
  printer.out = out;

  int episodes_done_at_end = 0;
  if (workers >= 1) {
    VectorizedTrainerConfig config;
    config.seed = seed;
    config.episode_length = Seconds(episode_len_s);
    config.num_envs = env_instances;
    config.workers = static_cast<size_t>(workers);
    config.replay_shards = static_cast<size_t>(shards);
    config.domain = randomize ? DomainRanges::Extended() : DomainRanges::TableThree();
    config.exploration_decay_episodes = episodes;

    VectorizedTrainer trainer(config);
    if (!resume.empty()) {
      try {
        trainer.LoadState(resume);
      } catch (const SerializationError& e) {
        std::fprintf(stderr, "cannot resume from %s: %s\n", resume.c_str(), e.what());
        return 1;
      }
      std::printf("resumed from %s at episode %d\n", resume.c_str(), trainer.episodes_done());
    }
    const int remaining = episodes - trainer.episodes_done();
    if (remaining <= 0) {
      std::printf("checkpoint already at episode %d >= target %d; nothing to do\n",
                  trainer.episodes_done(), episodes);
      return 0;
    }
    std::printf(
        "training Astraea to episode %d (%d to go, %d envs, %d workers, %s domain, episode "
        "length %.0fs)\n",
        episodes, remaining, env_instances, workers, randomize ? "extended" : "table-3",
        episode_len_s);
    std::printf("%-8s %-12s %-10s %-10s %-12s %-10s\n", "episode", "mean_reward", "r_fair",
                "r_thr", "critic_loss", "eval_jain");
    printer.save_policy = [&trainer](const std::string& path) { trainer.SaveCheckpoint(path); };
    printer.save_state = [&trainer, &out, &rotate](int episode) {
      const std::string path = out + ".state-" + std::to_string(episode);
      trainer.SaveState(path);
      return rotate(path);
    };
    trainer.Train(remaining, std::ref(printer));
    if (checkpoint_every > 0 && trainer.episodes_done() % checkpoint_every != 0) {
      printer.save_state(trainer.episodes_done());
    }
    if (printer.best_jain < 0.0) {
      trainer.SaveCheckpoint(out);
    }
    episodes_done_at_end = trainer.episodes_done();
    std::printf("state fingerprint: %08x (env steps %llu)\n", trainer.StateFingerprint(),
                static_cast<unsigned long long>(trainer.total_env_steps()));
  } else {
    LearnerConfig config;
    config.seed = seed;
    config.episode_length = Seconds(episode_len_s);
    config.env_instances = env_instances;
    // Pin the noise schedule to the total target so checkpointed/resumed runs
    // and straight-through runs follow identical decay.
    config.exploration_decay_episodes = episodes;

    Learner learner(config);
    if (!resume.empty()) {
      try {
        learner.LoadState(resume);
      } catch (const SerializationError& e) {
        std::fprintf(stderr, "cannot resume from %s: %s\n", resume.c_str(), e.what());
        return 1;
      }
      std::printf("resumed from %s at episode %d\n", resume.c_str(), learner.episodes_done());
    }
    const int remaining = episodes - learner.episodes_done();
    if (remaining <= 0) {
      std::printf("checkpoint already at episode %d >= target %d; nothing to do\n",
                  learner.episodes_done(), episodes);
      return 0;
    }
    std::printf("training Astraea to episode %d (%d to go, episode length %.0fs)\n", episodes,
                remaining, episode_len_s);
    std::printf("%-8s %-12s %-10s %-10s %-12s %-10s\n", "episode", "mean_reward", "r_fair",
                "r_thr", "critic_loss", "eval_jain");
    printer.save_policy = [&learner](const std::string& path) { learner.SaveCheckpoint(path); };
    printer.save_state = [&learner, &out, &rotate](int episode) {
      const std::string path = out + ".state-" + std::to_string(episode);
      learner.SaveState(path);
      return rotate(path);
    };
    learner.Train(remaining, std::ref(printer));
    if (checkpoint_every > 0 && learner.episodes_done() % checkpoint_every != 0) {
      printer.save_state(learner.episodes_done());
    }
    if (printer.best_jain < 0.0) {
      learner.SaveCheckpoint(out);
    }
    episodes_done_at_end = learner.episodes_done();
  }

  if (metrics_file != nullptr) {
    // Final line: the whole process-wide registry (learner.*/train.* gauges
    // and histograms, inference.* if any ran) as one JSON object.
    std::fprintf(metrics_file, "{\"registry\":%s}\n",
                 MetricsRegistry::Global().ToJson().c_str());
    std::fclose(metrics_file);
  }
  std::printf("done at episode %d; best eval Jain %.4f; checkpoint: %s\n", episodes_done_at_end,
              printer.best_jain, out.c_str());

  if (!promote_against.empty()) {
    return RunPromotion(out, promote_against);
  }
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
