// astraea_train: offline multi-agent training (paper §3.4 / §4 / Appendix A).
//
//   astraea_train --episodes 80 --out models/astraea_policy.ckpt [--seed 7]
//                 [--episode-len 30] [--envs 4] [--print-config]
//
// Episodes are sampled from the Table-3 ranges (bandwidth 40-160 Mbps, RTT
// 10-140 ms, buffer 0.1-16 BDP, 2-5 flows with heterogeneous RTTs and Poisson
// arrivals). Every 5 s of environment time the learner performs 20 TD3
// updates on the shared replay buffer. Every 10 episodes a deterministic
// 3-flow evaluation reports the average Jain index.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/core/learner.h"

namespace astraea {
namespace {

int Main(int argc, char** argv) {
  int episodes = 60;
  int env_instances = 1;
  double episode_len_s = 30.0;
  std::string out = "models/astraea_policy.ckpt";
  uint64_t seed = 7;
  bool print_config = false;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--episodes") == 0) {
      episodes = std::atoi(next());
    } else if (std::strcmp(argv[i], "--episode-len") == 0) {
      episode_len_s = std::atof(next());
    } else if (std::strcmp(argv[i], "--envs") == 0) {
      env_instances = std::atoi(next());
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out = next();
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--print-config") == 0) {
      print_config = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }

  LearnerConfig config;
  config.seed = seed;
  config.episode_length = Seconds(episode_len_s);
  config.env_instances = env_instances;

  if (print_config) {
    std::printf("%s", DescribeConfig(config.hp, config.ranges).c_str());
    return 0;
  }

  Learner learner(config);
  std::printf("training Astraea for %d episodes (episode length %.0fs)\n", episodes,
              episode_len_s);
  std::printf("%-8s %-12s %-10s %-10s %-12s %-10s\n", "episode", "mean_reward", "r_fair",
              "r_thr", "critic_loss", "eval_jain");

  double best_jain = -1.0;
  learner.Train(episodes, [&](const EpisodeDiagnostics& d) {
    std::printf("%-8d %-12.4f %-10.4f %-10.3f %-12.5f ", d.episode, d.env.mean_reward,
                d.env.mean_r_fair, d.env.mean_r_thr, d.td3.critic_loss);
    if (d.eval_jain >= 0.0) {
      std::printf("%-10.4f", d.eval_jain);
      if (d.eval_jain > best_jain) {
        best_jain = d.eval_jain;
        learner.SaveCheckpoint(out);
        std::printf("  [checkpoint saved]");
      }
    }
    std::printf("\n");
    std::fflush(stdout);
  });

  // Always leave a final checkpoint behind if evaluation never improved.
  if (best_jain < 0.0) {
    learner.SaveCheckpoint(out);
  }
  std::printf("done; best eval Jain %.4f; checkpoint: %s\n", best_jain, out.c_str());
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
