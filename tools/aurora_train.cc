// aurora_train: trains the Aurora baseline with its own single-agent reward
// (paper Eq. 1: r = 10*throughput - 1000*latency - 2000*loss). One flow per
// episode, randomized links — exactly the fairness-agnostic setup whose
// consequences §2 demonstrates. Produces a checkpoint loadable by
// MlpAuroraPolicy.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/cc/aurora.h"
#include "src/rl/replay_buffer.h"
#include "src/rl/td3.h"
#include "src/sim/network.h"
#include "src/util/cli_flags.h"
#include "src/util/rng.h"

namespace astraea {
namespace {

// Aurora's reward, rescaled into a trainable range: throughput in fractions
// of 100 Mbps, latency in seconds, loss as a ratio.
float AuroraReward(const MtpReport& r) {
  const double thr_norm = r.thr_bps / 100e6;
  const double lat_s = r.avg_rtt > 0 ? ToSeconds(r.avg_rtt) : 0.0;
  const double raw = 10.0 * thr_norm - 1000.0 * lat_s / 100.0 - 2000.0 * r.loss_ratio / 100.0;
  return static_cast<float>(std::clamp(raw / 10.0, -1.0, 1.0));
}

// Trainable Aurora policy: routes actions through the TD3 actor and records
// transitions into the replay buffer.
class TrainingAuroraPolicy : public AuroraPolicy {
 public:
  TrainingAuroraPolicy(Td3Trainer* trainer, ReplayBuffer* buffer, double noise, Rng* rng)
      : trainer_(trainer), buffer_(buffer), noise_(noise), rng_(rng) {}

  // Called by Aurora once per MTP with the stacked state; Aurora itself has no
  // reward hook, so the reward is attached on the *next* call (the elapsed
  // interval's statistics live in the new state's most recent features).
  double Act(std::span<const float> state) const override {
    std::vector<float> s(state.begin(), state.end());
    const double a =
        std::clamp(trainer_->Act(s)[0] + rng_->Normal(0.0, noise_), -1.0, 1.0);
    if (has_pending_) {
      Transition t;
      t.global_state = {};
      t.local_state = pending_state_;
      t.action = {pending_action_};
      t.reward = pending_reward_;
      t.next_global_state = {};
      t.next_local_state = s;
      t.terminal = false;
      buffer_->Add(std::move(t));
    }
    pending_state_ = std::move(s);
    pending_action_ = static_cast<float>(a);
    has_pending_ = true;
    return a;
  }

  void SetRewardForPending(float reward) const { pending_reward_ = reward; }

 private:
  Td3Trainer* trainer_;
  ReplayBuffer* buffer_;
  double noise_;
  Rng* rng_;
  mutable bool has_pending_ = false;
  mutable std::vector<float> pending_state_;
  mutable float pending_action_ = 0.0f;
  mutable float pending_reward_ = 0.0f;
};

// Aurora variant that feeds the reward back to the training policy.
class TrainableAurora : public Aurora {
 public:
  TrainableAurora(std::shared_ptr<TrainingAuroraPolicy> policy)
      : Aurora(policy), policy_(std::move(policy)) {}

  void OnMtpTick(const MtpReport& report) override {
    policy_->SetRewardForPending(AuroraReward(report));
    Aurora::OnMtpTick(report);
  }

 private:
  std::shared_ptr<TrainingAuroraPolicy> policy_;
};

int Main(int argc, char** argv) {
  int episodes = 60;
  std::string out = "models/aurora_policy.ckpt";
  uint64_t seed = 11;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--episodes") == 0) {
      episodes = static_cast<int>(cli::ParseInt("--episodes", next(), 1, 1'000'000));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out = next();
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = cli::ParseU64("--seed", next());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }

  Rng rng(seed);
  Td3Config td3;
  td3.local_state_dim = kAuroraStateDim;
  td3.global_state_dim = 0;
  td3.action_dim = 1;
  td3.hidden = {64, 32};  // Aurora's published model is small
  Td3Trainer trainer(td3, &rng);
  ReplayBuffer buffer(100'000);

  std::printf("training Aurora for %d episodes\n", episodes);
  for (int e = 0; e < episodes; ++e) {
    const double noise = 0.2 * (1.0 - static_cast<double>(e) / episodes) + 0.03;
    Network net(static_cast<uint64_t>(rng.UniformInt(1, 1'000'000)));
    LinkConfig link;
    link.rate = rng.Uniform(Mbps(40), Mbps(160));
    link.propagation_delay = static_cast<TimeNs>(rng.Uniform(Milliseconds(5), Milliseconds(70)));
    link.buffer_bytes = static_cast<uint64_t>(
        rng.Uniform(0.5, 4.0) * static_cast<double>(BdpBytes(link.rate, 2 * link.propagation_delay)));
    net.AddLink(link);

    auto policy = std::make_shared<TrainingAuroraPolicy>(&trainer, &buffer, noise, &rng);
    FlowSpec spec;
    spec.scheme = "aurora-train";
    spec.start = 0;
    spec.duration = -1;
    spec.make_cc = [policy] { return std::make_unique<TrainableAurora>(policy); };
    net.AddFlow(spec);

    Td3Diagnostics diag;
    for (TimeNs t = Seconds(5.0); t <= Seconds(20.0); t += Seconds(5.0)) {
      net.Run(t);
      for (int step = 0; step < 20; ++step) {
        diag = trainer.Update(buffer, &rng);
      }
    }
    const double util =
        net.flow_stats(0).throughput_mbps.MeanOver(Seconds(5.0), Seconds(20.0)) /
        ToMbps(link.rate);
    std::printf("episode %-4d util %.3f critic_loss %.5f\n", e + 1, util, diag.critic_loss);
    std::fflush(stdout);
  }
  trainer.SaveActor(out);
  std::printf("checkpoint: %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
