// golden_trace: differential regression harness for the simulator.
//
//   golden_trace --check [--dir tests/goldens] [--scheme s] [--scenario s]
//   golden_trace --bless [--dir tests/goldens] [--scheme s] [--scenario s]
//   golden_trace --list
//
// Runs every congestion controller on a small canonical scenario set and
// serializes the full per-event trace (send/ack/loss/rto/cwnd plus every
// queue transition) through the binary Tracer. --check compares each run
// bit-exactly against the checked-in golden under tests/goldens/ and fails
// loudly on any divergence; --bless regenerates the goldens and always
// prints a diff summary (first divergence, per-event-type counts) so a
// blessing commit documents exactly what changed and why.
//
// Determinism contract: scenarios pin the RNG seed and use the in-repo
// DistilledPolicy for Astraea explicitly — no ASTRAEA_MODEL env lookup, no
// checkpoint files — so a golden depends only on the simulator + controller
// code. Traces are recorded into the in-memory ring (Format::kNone) and
// written out afterwards, which also keeps --check allocation-free in the
// hot loop. Goldens are bit-exact per platform/compiler; regenerate with
// --bless when a change intentionally alters dynamics (see DESIGN.md §10).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness/cli_scenario.h"
#include "bench/harness/scenario.h"
#include "bench/harness/scenario_universe.h"
#include "src/core/policy.h"
#include "src/sim/trace.h"

#ifndef ASTRAEA_SOURCE_DIR
#define ASTRAEA_SOURCE_DIR "."
#endif

namespace astraea {
namespace {

// Canonical scenario set: small (sub-second-scale, single-digit Mbps) so the
// whole golden corpus stays under ~2 MB, but covering the qualitatively
// distinct regimes: a clean dumbbell, heavy iid wire loss and a two-flow RED
// bottleneck (AQM + flow interaction).
struct GoldenScenario {
  const char* name;
  double bw_mbps;
  double rtt_ms;
  double buffer_bdp;
  double loss;
  const char* qdisc;
  int flows;
  double second_flow_start_s;  // ignored when flows == 1
  double until_s;
};

constexpr GoldenScenario kScenarios[] = {
    {"clean", 2.0, 20.0, 1.0, 0.0, "droptail", 1, 0.0, 0.8},
    {"lossy", 2.0, 20.0, 1.0, 0.02, "droptail", 1, 0.0, 0.8},
    {"red2", 2.0, 30.0, 2.0, 0.0, "red", 2, 0.3, 0.8},
};

// The paper's comparison set (schemes.h) minus orca, whose reproduction is
// still tracked in ROADMAP.md.
constexpr const char* kSchemes[] = {"newreno", "cubic", "vegas",  "bbr",  "copa",
                                    "vivace",  "aurora", "remy", "astraea"};

// Universe scenario set (ROADMAP item 4): one golden per family, each with a
// small per-family scheme subset (ECN-capable DCTCP only makes sense on the
// incast bottleneck; the others use the paper's main comparands). The configs
// are deliberately tiny versions of the bench defaults so the corpus stays
// small, but exercise the same code paths: marking queue, trace replay,
// Pareto churn + UDP blasts.
struct UniverseGoldenScenario {
  const char* name;
  UniverseFamily family;
  const char* schemes[3];
};

constexpr UniverseGoldenScenario kUniverseScenarios[] = {
    {"incast", UniverseFamily::kIncast, {"cubic", "dctcp", "astraea"}},
    {"tracecell", UniverseFamily::kTraceDriven, {"cubic", "bbr", "astraea"}},
    {"adv", UniverseFamily::kAdversarial, {"cubic", "bbr", "astraea"}},
};

std::vector<TraceEvent> CaptureTrace(DumbbellScenario& scenario, TimeNs until, const char* tag) {
  Tracer tracer("", Tracer::Format::kNone, 1 << 20);
  scenario.network().SetTracer(&tracer);
  scenario.Run(until);
  if (tracer.recorded() > (1u << 20)) {
    std::fprintf(stderr, "FATAL: %s overflowed the trace ring (%llu events)\n", tag,
                 static_cast<unsigned long long>(tracer.recorded()));
    std::exit(2);
  }
  return tracer.BufferedEvents();
}

std::vector<TraceEvent> RunUniverseGolden(const UniverseGoldenScenario& sc,
                                          const std::string& scheme,
                                          const std::string& traces_dir) {
  SchemeOptions pinned;
  pinned.astraea_policy = std::make_shared<DistilledPolicy>();
  switch (sc.family) {
    case UniverseFamily::kIncast: {
      IncastConfig config;
      config.fan_in = 8;
      config.waves = 1;
      config.request_bytes = 32 * 1024;
      config.scheme = scheme;
      config.ecn = true;
      config.seed = 1;
      auto scenario = BuildIncast(config, &pinned);
      return CaptureTrace(*scenario, IncastHorizon(config), sc.name);
    }
    case UniverseFamily::kTraceDriven: {
      TraceDrivenConfig config;
      config.trace_path = traces_dir + "/cellular.trace";
      config.scheme = scheme;
      config.duration = Seconds(1.0);
      config.seed = 1;
      auto scenario = BuildTraceDriven(config, &pinned);
      return CaptureTrace(*scenario, config.duration, sc.name);
    }
    case UniverseFamily::kAdversarial: {
      AdversarialConfig config;
      config.bandwidth = Mbps(20);
      config.scheme = scheme;
      config.duration = Seconds(2.0);
      config.blast_period = Seconds(1.0);
      config.blast_on = Milliseconds(300);
      config.seed = 1;
      auto scenario = BuildAdversarial(config, &pinned);
      return CaptureTrace(*scenario, config.duration + Milliseconds(50), sc.name);
    }
  }
  std::fprintf(stderr, "unreachable universe family\n");
  std::exit(2);
}

std::vector<TraceEvent> RunGolden(const GoldenScenario& sc, const std::string& scheme) {
  ScenarioCliOptions opts;
  opts.bw_mbps = sc.bw_mbps;
  opts.rtt_ms = sc.rtt_ms;
  opts.buffer_bdp = sc.buffer_bdp;
  opts.loss = sc.loss;
  opts.qdisc = sc.qdisc;
  opts.seed = 1;
  DumbbellScenario scenario(BuildDumbbellConfig(opts));
  // Pin the policy: goldens must not depend on ASTRAEA_MODEL or checkpoint
  // files lying around.
  scenario.scheme_options().astraea_policy = std::make_shared<DistilledPolicy>();

  scenario.AddFlow(scheme, 0);
  if (sc.flows > 1) {
    scenario.AddFlow(scheme, Seconds(sc.second_flow_start_s));
  }

  Tracer tracer("", Tracer::Format::kNone, 1 << 20);
  scenario.network().SetTracer(&tracer);
  scenario.Run(Seconds(sc.until_s));
  if (tracer.recorded() > (1u << 20)) {
    std::fprintf(stderr, "FATAL: %s/%s overflowed the trace ring (%llu events)\n", sc.name,
                 scheme.c_str(), static_cast<unsigned long long>(tracer.recorded()));
    std::exit(2);
  }
  return tracer.BufferedEvents();
}

std::string GoldenPath(const std::string& dir, const GoldenScenario& sc,
                       const std::string& scheme) {
  return dir + "/" + sc.name + "__" + scheme + ".trace";
}

bool SameEvent(const TraceEvent& x, const TraceEvent& y) {
  return x.time == y.time && x.type == y.type && x.flow_id == y.flow_id &&
         x.link_id == y.link_id && x.seq == y.seq && x.a == y.a && x.b == y.b;
}

std::map<std::string, size_t> CountByType(const std::vector<TraceEvent>& events) {
  std::map<std::string, size_t> counts;
  for (const TraceEvent& ev : events) {
    ++counts[TraceEventTypeName(ev.type)];
  }
  return counts;
}

// Prints the mandatory divergence summary: sizes, first diverging record and
// the per-type count delta. Returns true if the traces are identical.
bool DiffSummary(const char* tag, const std::vector<TraceEvent>& golden,
                 const std::vector<TraceEvent>& fresh) {
  size_t first = 0;
  const size_t common = std::min(golden.size(), fresh.size());
  while (first < common && SameEvent(golden[first], fresh[first])) {
    ++first;
  }
  if (first == common && golden.size() == fresh.size()) {
    return true;
  }
  std::printf("  %s: %zu -> %zu events, first divergence at record %zu\n", tag, golden.size(),
              fresh.size(), first);
  auto show = [&](const char* side, const std::vector<TraceEvent>& events) {
    if (first >= events.size()) {
      std::printf("    %-6s <no record (trace ended)>\n", side);
      return;
    }
    const TraceEvent& ev = events[first];
    std::printf("    %-6s t=%.6fs %-7s flow=%d link=%d seq=%llu a=%g b=%g\n", side,
                ToSeconds(ev.time), TraceEventTypeName(ev.type), ev.flow_id, ev.link_id,
                static_cast<unsigned long long>(ev.seq), ev.a, ev.b);
  };
  show("golden", golden);
  show("fresh", fresh);
  const auto gold_counts = CountByType(golden);
  const auto fresh_counts = CountByType(fresh);
  std::map<std::string, size_t> keys_union = gold_counts;
  keys_union.insert(fresh_counts.begin(), fresh_counts.end());
  for (const auto& [type, _] : keys_union) {
    const size_t g = gold_counts.count(type) ? gold_counts.at(type) : 0;
    const size_t f = fresh_counts.count(type) ? fresh_counts.at(type) : 0;
    if (g != f) {
      std::printf("    %-7s %zu -> %zu\n", type.c_str(), g, f);
    }
  }
  return false;
}

void WriteGolden(const std::string& path, const std::vector<TraceEvent>& events) {
  Tracer out(path, Tracer::Format::kBinary);
  for (const TraceEvent& ev : events) {
    out.Record(ev.time, ev.type, ev.flow_id, ev.link_id, ev.seq, ev.a, ev.b);
  }
  out.Close();
}

struct Args {
  bool check = false;
  bool bless = false;
  bool list = false;
  std::string dir = "tests/goldens";
  std::string traces = std::string(ASTRAEA_SOURCE_DIR) + "/traces";
  std::string scheme;    // empty = all
  std::string scenario;  // empty = all
};

Args Parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--check") == 0) {
      a.check = true;
    } else if (std::strcmp(argv[i], "--bless") == 0) {
      a.bless = true;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      a.list = true;
    } else if (std::strcmp(argv[i], "--dir") == 0) {
      a.dir = next("--dir");
    } else if (std::strcmp(argv[i], "--traces") == 0) {
      a.traces = next("--traces");
    } else if (std::strcmp(argv[i], "--scheme") == 0) {
      a.scheme = next("--scheme");
    } else if (std::strcmp(argv[i], "--scenario") == 0) {
      a.scenario = next("--scenario");
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --check, --bless or --list)\n", argv[i]);
      std::exit(1);
    }
  }
  if (a.check + a.bless + a.list != 1) {
    std::fprintf(stderr, "exactly one of --check, --bless, --list is required\n");
    std::exit(1);
  }
  return a;
}

// Shared check/bless logic for one (scenario, scheme) cell. Returns false on
// a --check mismatch.
bool ProcessGolden(const Args& args, const std::string& tag, const std::string& path,
                   const std::vector<TraceEvent>& fresh) {
  std::vector<TraceEvent> golden;
  bool have_golden = false;
  try {
    golden = ReadBinaryTrace(path);
    have_golden = true;
  } catch (const std::exception& e) {
    if (args.check) {
      std::printf("FAIL %-18s cannot read golden %s: %s\n", tag.c_str(), path.c_str(), e.what());
      return false;
    }
  }

  if (args.check) {
    const bool ok = DiffSummary(tag.c_str(), golden, fresh);
    std::printf("%s %s (%zu events)\n", ok ? "OK  " : "FAIL", tag.c_str(), fresh.size());
    return ok;
  }
  // bless
  if (have_golden && DiffSummary(tag.c_str(), golden, fresh)) {
    std::printf("KEEP %s (unchanged, %zu events)\n", tag.c_str(), fresh.size());
  } else {
    WriteGolden(path, fresh);
    std::printf("%s %s (%zu events) -> %s\n", have_golden ? "REGEN" : "NEW  ", tag.c_str(),
                fresh.size(), path.c_str());
  }
  return true;
}

int Main(int argc, char** argv) {
  const Args args = Parse(argc, argv);
  if (args.list) {
    std::printf("scenarios:");
    for (const GoldenScenario& sc : kScenarios) {
      std::printf(" %s", sc.name);
    }
    for (const UniverseGoldenScenario& sc : kUniverseScenarios) {
      std::printf(" %s", sc.name);
    }
    std::printf("\nschemes:  ");
    for (const char* s : kSchemes) {
      std::printf(" %s", s);
    }
    std::printf(" (universe scenarios use per-family subsets, incl. dctcp)\n");
    return 0;
  }

  int failures = 0;
  int ran = 0;
  for (const GoldenScenario& sc : kScenarios) {
    if (!args.scenario.empty() && args.scenario != sc.name) {
      continue;
    }
    for (const char* scheme : kSchemes) {
      if (!args.scheme.empty() && args.scheme != scheme) {
        continue;
      }
      ++ran;
      const std::string path = GoldenPath(args.dir, sc, scheme);
      const std::vector<TraceEvent> fresh = RunGolden(sc, scheme);
      const std::string tag = std::string(sc.name) + "/" + scheme;
      if (!ProcessGolden(args, tag, path, fresh)) {
        ++failures;
      }
    }
  }
  for (const UniverseGoldenScenario& sc : kUniverseScenarios) {
    if (!args.scenario.empty() && args.scenario != sc.name) {
      continue;
    }
    for (const char* scheme : sc.schemes) {
      if (!args.scheme.empty() && args.scheme != scheme) {
        continue;
      }
      ++ran;
      const std::string path = args.dir + "/" + sc.name + "__" + scheme + ".trace";
      const std::vector<TraceEvent> fresh = RunUniverseGolden(sc, scheme, args.traces);
      const std::string tag = std::string(sc.name) + "/" + scheme;
      if (!ProcessGolden(args, tag, path, fresh)) {
        ++failures;
      }
    }
  }
  if (ran == 0) {
    std::fprintf(stderr, "no scenario/scheme matched the filters\n");
    return 1;
  }
  if (args.check) {
    std::printf("%d/%d golden traces match\n", ran - failures, ran);
    return failures == 0 ? 0 : 1;
  }
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
