#!/usr/bin/env bash
# End-to-end check of the real-packet UDP data plane across network
# namespaces with kernel (tc netem/tbf) shaping — the closest thing to a real
# WAN path without leaving one machine. Requires root and `ip`/`tc`; exits 0
# with a SKIP message when either is missing, so it is safe to call from CI.
#
#   sudo tools/net_e2e_netns.sh [build-dir] [--rate-mbit N] [--delay-ms N]
#                               [--loss-pct P] [--bytes N]
#
# Topology: veth pair between namespaces "astraea_tx" and "astraea_rx";
# netem (delay/loss) + tbf (rate) on both ends; astraea_net recv in rx,
# astraea_net send in tx. Asserts the transfer completes with zero corrupt
# frames and nonzero goodput.

set -euo pipefail

BUILD_DIR="build"
RATE_MBIT=50
DELAY_MS=10   # per direction => 2x base RTT
LOSS_PCT=0
BYTES=$((16 * 1024 * 1024))

while [[ $# -gt 0 ]]; do
  case "$1" in
    --rate-mbit) RATE_MBIT="$2"; shift 2 ;;
    --delay-ms)  DELAY_MS="$2";  shift 2 ;;
    --loss-pct)  LOSS_PCT="$2";  shift 2 ;;
    --bytes)     BYTES="$2";     shift 2 ;;
    *)           BUILD_DIR="$1"; shift ;;
  esac
done

NET_BIN="$BUILD_DIR/tools/astraea_net"
if [[ ! -x "$NET_BIN" ]]; then
  echo "SKIP: $NET_BIN not built"
  exit 0
fi
if [[ "$(id -u)" -ne 0 ]] || ! command -v ip >/dev/null || ! command -v tc >/dev/null; then
  echo "SKIP: needs root plus iproute2 (ip, tc)"
  exit 0
fi
if ! ip netns add astraea_probe 2>/dev/null; then
  echo "SKIP: cannot create network namespaces here"
  exit 0
fi
ip netns del astraea_probe

TX_NS=astraea_tx
RX_NS=astraea_rx
cleanup() {
  ip netns del "$TX_NS" 2>/dev/null || true
  ip netns del "$RX_NS" 2>/dev/null || true
}
trap cleanup EXIT
cleanup

ip netns add "$TX_NS"
ip netns add "$RX_NS"
ip link add veth_tx type veth peer name veth_rx
ip link set veth_tx netns "$TX_NS"
ip link set veth_rx netns "$RX_NS"
ip -n "$TX_NS" addr add 10.77.0.1/24 dev veth_tx
ip -n "$RX_NS" addr add 10.77.0.2/24 dev veth_rx
ip -n "$TX_NS" link set veth_tx up
ip -n "$RX_NS" link set veth_rx up
ip -n "$TX_NS" link set lo up
ip -n "$RX_NS" link set lo up

# Shape both directions: netem for delay/loss, tbf child for the rate limit.
# Kernels without sch_netem/sch_tbf (minimal containers) still run the
# transfer, just unshaped — the cross-namespace kernel path is the point.
SHAPED=1
for spec in "$TX_NS veth_tx" "$RX_NS veth_rx"; do
  read -r ns dev <<< "$spec"
  if ! ip netns exec "$ns" tc qdisc add dev "$dev" root handle 1: netem \
      delay "${DELAY_MS}ms" loss "${LOSS_PCT}%" 2>/dev/null; then
    echo "note: kernel lacks the netem qdisc; running unshaped"
    SHAPED=0
    break
  fi
  if ! ip netns exec "$ns" tc qdisc add dev "$dev" parent 1: handle 10: tbf \
      rate "${RATE_MBIT}mbit" burst 32kbit latency 50ms 2>/dev/null; then
    echo "note: kernel lacks the tbf qdisc; running delay/loss only"
    break
  fi
done
echo "shaped=$SHAPED"

# Both subcommands print a one-object JSON report on stdout (logs go to
# stderr), so plain redirection captures the machine-readable result.
echo "== rx: $NET_BIN recv --port 9000"
ip netns exec "$RX_NS" "$NET_BIN" recv --port 9000 > /tmp/netns_recv.json &
RECV_PID=$!
sleep 0.5

echo "== tx: $NET_BIN send --host 10.77.0.2 --port 9000 --bytes $BYTES"
SEND_RC=0
ip netns exec "$TX_NS" "$NET_BIN" send --host 10.77.0.2 --port 9000 \
  --bytes "$BYTES" > /tmp/netns_send.json || SEND_RC=$?

wait "$RECV_PID" || true

python3 - << 'EOF'
import json
send = json.load(open("/tmp/netns_send.json"))
recv = json.load(open("/tmp/netns_recv.json"))
assert send["completed"], send
assert send["goodput_mbps"] > 0, send
assert recv["corrupt_frames"] == 0, recv
print(f"netns e2e OK: goodput {send['goodput_mbps']:.1f} Mbps, "
      f"rtt p95 {send['rtt_p95_ms']:.1f} ms, "
      f"{recv['received_frames']} frames, 0 corrupt")
EOF
exit "$SEND_RC"
