// run_scenario: quick CLI to exercise any scheme combination on a dumbbell.
//
//   run_scenario --scheme astraea --flows 3 --bw 100 --rtt 30 --buffer 1 \
//                --interval 40 --duration 120 --until 200 [--timeline]
//                [--qdisc droptail|red|codel] [--trace file.mahimahi]
//                [--trace-out run.trace] [--trace-format binary|jsonl]
//                [--metrics-out metrics.json] [--model ckpt]
//                [--serve-socket /tmp/astraea.sock] [--rpc-timeout 20ms]
//                [--connect-timeout 500ms]
//
// Prints per-flow mean throughputs, the average Jain index, utilization and
// latency, optionally with a 1-second throughput timeline.
//
// --serve-socket routes every Astraea policy decision to an out-of-process
// `astraea_serve` over shared-memory IPC instead of in-process inference;
// requests that exceed --rpc-timeout (and all requests once the server dies)
// degrade gracefully to the local fallback policy, counted in the
// serve.fallback_total metric.
//
// --trace-out records every packet event (enqueue/dequeue/drop/send/ack/loss/
// rto/cwnd/action) to a file — binary by default (convert with trace_dump),
// JSONL with --trace-format jsonl. Tracing never perturbs the simulation: a
// traced run produces bit-identical results to an untraced one.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness/cli_scenario.h"
#include "bench/harness/metrics.h"
#include "bench/harness/scenario.h"
#include "bench/harness/table.h"
#include "src/sim/trace.h"
#include "src/util/cli_flags.h"
#include "src/util/metrics.h"

namespace astraea {
namespace {

struct Args {
  std::string scheme = "astraea";
  int flows = 2;
  ScenarioCliOptions dumbbell;
  PolicyCliOptions policy;
  double interval_s = 0.0;  // stagger between flow starts
  double duration_s = -1.0;
  double until_s = 60.0;
  bool timeline = false;
  std::string csv_out;
  std::string trace_out;
  std::string trace_format = "binary";
  std::string metrics_out;
};

Args Parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--scheme") == 0) {
      a.scheme = next("--scheme");
    } else if (std::strcmp(argv[i], "--flows") == 0) {
      a.flows = static_cast<int>(cli::ParseInt("--flows", next("--flows"), 1, 10000));
    } else if (std::strcmp(argv[i], "--bw") == 0) {
      a.dumbbell.bw_mbps = cli::ParseDouble("--bw", next("--bw"), 0.001, 1e6);
    } else if (std::strcmp(argv[i], "--rtt") == 0) {
      a.dumbbell.rtt_ms = cli::ParseDouble("--rtt", next("--rtt"), 0.01, 60000.0);
    } else if (std::strcmp(argv[i], "--buffer") == 0) {
      a.dumbbell.buffer_bdp = cli::ParseDouble("--buffer", next("--buffer"), 0.001, 10000.0);
    } else if (std::strcmp(argv[i], "--loss") == 0) {
      a.dumbbell.loss = cli::ParseDouble("--loss", next("--loss"), 0.0, 1.0);
    } else if (std::strcmp(argv[i], "--interval") == 0) {
      a.interval_s = cli::ParseDouble("--interval", next("--interval"), 0.0, 1e6);
    } else if (std::strcmp(argv[i], "--duration") == 0) {
      a.duration_s = cli::ParseDouble("--duration", next("--duration"), -1.0, 1e6);
    } else if (std::strcmp(argv[i], "--until") == 0) {
      a.until_s = cli::ParseDouble("--until", next("--until"), 0.1, 1e6);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      a.dumbbell.seed = cli::ParseU64("--seed", next("--seed"));
    } else if (std::strcmp(argv[i], "--qdisc") == 0) {
      a.dumbbell.qdisc = next("--qdisc");
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      a.dumbbell.trace_file = next("--trace");
    } else if (std::strcmp(argv[i], "--model") == 0) {
      a.policy.model = next("--model");
    } else if (std::strcmp(argv[i], "--serve-socket") == 0) {
      a.policy.serve_socket = next("--serve-socket");
    } else if (std::strcmp(argv[i], "--rpc-timeout") == 0) {
      a.policy.rpc_timeout =
          cli::ParsePositiveDuration("--rpc-timeout", next("--rpc-timeout"), Seconds(60.0));
    } else if (std::strcmp(argv[i], "--connect-timeout") == 0) {
      a.policy.connect_timeout =
          cli::ParsePositiveDuration("--connect-timeout", next("--connect-timeout"), Seconds(60.0));
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      a.csv_out = next("--csv");
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      a.trace_out = next("--trace-out");
    } else if (std::strcmp(argv[i], "--trace-format") == 0) {
      a.trace_format = next("--trace-format");
      if (a.trace_format != "binary" && a.trace_format != "jsonl") {
        std::fprintf(stderr, "--trace-format must be binary or jsonl\n");
        std::exit(1);
      }
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      a.metrics_out = next("--metrics-out");
    } else if (std::strcmp(argv[i], "--timeline") == 0) {
      a.timeline = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(1);
    }
  }
  return a;
}

int Main(int argc, char** argv) {
  const Args args = Parse(argc, argv);

  DumbbellScenario scenario(BuildDumbbellConfig(args.dumbbell));
  scenario.scheme_options().astraea_policy = MakeCliPolicy(args.policy);

  for (int i = 0; i < args.flows; ++i) {
    const TimeNs start = Seconds(args.interval_s * i);
    const TimeNs duration = args.duration_s > 0 ? Seconds(args.duration_s) : -1;
    scenario.AddFlow(args.scheme, start, duration);
  }
  std::unique_ptr<Tracer> tracer;
  if (!args.trace_out.empty()) {
    tracer = std::make_unique<Tracer>(
        args.trace_out,
        args.trace_format == "jsonl" ? Tracer::Format::kJsonl : Tracer::Format::kBinary);
    scenario.network().SetTracer(tracer.get());
  }

  const TimeNs until = Seconds(args.until_s);
  scenario.Run(until);
  if (tracer != nullptr) {
    tracer->Close();
    std::printf("%llu events traced to %s\n",
                static_cast<unsigned long long>(tracer->recorded()), args.trace_out.c_str());
  }

  const Network& net = scenario.network();
  if (args.timeline) {
    std::printf("time(s)");
    for (size_t i = 0; i < net.flow_count(); ++i) {
      std::printf("  f%zu(Mbps)", i);
    }
    std::printf("  rtt0(ms)\n");
    for (TimeNs t = 0; t + Seconds(1.0) <= until; t += Seconds(1.0)) {
      std::printf("%6.0f ", ToSeconds(t));
      for (size_t i = 0; i < net.flow_count(); ++i) {
        std::printf("  %8.2f",
                    net.flow_stats(static_cast<int>(i)).throughput_mbps.MeanOver(t, t + Seconds(1.0)));
      }
      std::printf("  %7.1f\n", net.flow_stats(0).rtt_ms.MeanOver(t, t + Seconds(1.0)));
    }
  }

  ConsoleTable table({"flow", "scheme", "mean thr (Mbps)", "mean rtt (ms)", "lost (MB)"});
  for (size_t i = 0; i < net.flow_count(); ++i) {
    const int id = static_cast<int>(i);
    const FlowStats& stats = net.flow_stats(id);
    table.AddRow({std::to_string(i), net.flow_spec(id).scheme,
                  ConsoleTable::Num(stats.throughput_mbps.MeanOver(0, until)),
                  ConsoleTable::Num(stats.rtt_ms.MeanOver(0, until), 1),
                  ConsoleTable::Num(static_cast<double>(stats.bytes_lost) / 1e6, 3)});
  }
  table.Print();
  if (!args.csv_out.empty()) {
    WriteFlowStatsCsv(net, args.csv_out);
    std::printf("per-MTP series written to %s\n", args.csv_out.c_str());
  }
  std::printf("avg Jain: %.4f   utilization: %.3f   mean RTT: %.1f ms   loss: %.4f%%\n",
              AverageJain(net, 0, until, Milliseconds(500)), LinkUtilization(net, 0, 0, until),
              MeanRttMs(net, 0, until), 100.0 * AggregateLossRatio(net));
  if (!args.metrics_out.empty()) {
    std::FILE* f = std::fopen(args.metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open --metrics-out file: %s\n", args.metrics_out.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", MetricsRegistry::Global().ToJson().c_str());
    std::fclose(f);
    std::printf("metrics registry written to %s\n", args.metrics_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
