// trace_dump: convert a binary simulator trace (run_scenario --trace-out) to
// per-flow CSV for plotting.
//
//   trace_dump run.trace                      # all flows to stdout
//   trace_dump run.trace --flow 2             # one flow only
//   trace_dump run.trace --out-prefix flows_  # flows_0.csv, flows_1.csv, ...
//
// Columns: time_s,event,flow,link,seq,a,b — the a/b meanings per event type
// are documented in src/sim/trace.h. Events with no flow attribution
// (flow_id = -1) appear only in the stdout/all-flows output.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/sim/trace.h"
#include "src/util/cli_flags.h"

namespace astraea {
namespace {

void WriteCsvHeader(std::FILE* f) {
  std::fprintf(f, "time_s,event,flow,link,seq,a,b\n");
}

void WriteCsvRow(std::FILE* f, const TraceEvent& ev) {
  std::fprintf(f, "%.9f,%s,%d,%d,%llu,%.17g,%.17g\n", ToSeconds(ev.time),
               TraceEventTypeName(ev.type), ev.flow_id, ev.link_id,
               static_cast<unsigned long long>(ev.seq), ev.a, ev.b);
}

int Main(int argc, char** argv) {
  std::string in_path;
  std::string out_prefix;
  int only_flow = INT32_MIN;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--flow") == 0) {
      only_flow = static_cast<int>(cli::ParseInt("--flow", next(), -1, 1'000'000));
    } else if (std::strcmp(argv[i], "--out-prefix") == 0) {
      out_prefix = next();
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    } else if (in_path.empty()) {
      in_path = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return 1;
    }
  }
  if (in_path.empty()) {
    std::fprintf(stderr,
                 "usage: trace_dump <trace-file> [--flow N] [--out-prefix PREFIX]\n");
    return 1;
  }

  std::vector<TraceEvent> events;
  try {
    events = ReadBinaryTrace(in_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot read %s: %s\n", in_path.c_str(), e.what());
    return 1;
  }

  if (out_prefix.empty()) {
    // Single stream to stdout (optionally filtered by --flow).
    WriteCsvHeader(stdout);
    for (const TraceEvent& ev : events) {
      if (only_flow != INT32_MIN && ev.flow_id != only_flow) {
        continue;
      }
      WriteCsvRow(stdout, ev);
    }
    return 0;
  }

  // One CSV per flow. Events are time-ordered in the trace, so each per-flow
  // file is time-ordered too.
  std::map<int32_t, std::FILE*> files;
  for (const TraceEvent& ev : events) {
    if (ev.flow_id < 0 || (only_flow != INT32_MIN && ev.flow_id != only_flow)) {
      continue;
    }
    auto it = files.find(ev.flow_id);
    if (it == files.end()) {
      const std::string path = out_prefix + std::to_string(ev.flow_id) + ".csv";
      std::FILE* f = std::fopen(path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
      }
      WriteCsvHeader(f);
      it = files.emplace(ev.flow_id, f).first;
    }
    WriteCsvRow(it->second, ev);
  }
  for (auto& [flow, f] : files) {
    std::fclose(f);
    std::printf("flow %d -> %s%d.csv\n", flow, out_prefix.c_str(), flow);
  }
  return 0;
}

}  // namespace
}  // namespace astraea

int main(int argc, char** argv) { return astraea::Main(argc, argv); }
