#!/usr/bin/env python3
"""Regenerates the bundled Mahimahi-compatible link traces.

The traces are checked in; this script exists so the captures are
reproducible (fixed LCG, no library RNG) and documented. Format: one line
per 1500-byte packet delivery opportunity, the integer millisecond at which
it occurs, non-decreasing (see src/sim/link_trace.h and DESIGN.md §15).

  python3 traces/gen_traces.py   # rewrites cellular.trace / satellite.trace
"""

import math
import os

MTU_BITS = 1500 * 8


def lcg(seed):
    """Deterministic uniform [0,1) stream (MMIX constants)."""
    state = seed
    while True:
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        yield (state >> 11) / float(1 << 53)


def emit(path, duration_ms, rate_mbps_at):
    """Walks 1 ms slots accumulating fractional packet credit."""
    lines = []
    credit = 0.0
    for t in range(duration_ms):
        credit += rate_mbps_at(t) * 1e6 / 1000.0 / MTU_BITS
        while credit >= 1.0:
            lines.append("%d\n" % t)
            credit -= 1.0
    with open(path, "w") as f:
        f.writelines(lines)
    print("%s: %d ms, %d opportunities (mean %.1f Mbps)" %
          (path, duration_ms, len(lines),
           len(lines) * MTU_BITS / (duration_ms / 1000.0) / 1e6))


def cellular(t, rng=lcg(0xCE11)):
    """LTE-like capture: slow capacity swings, fast fading, deep fades."""
    slow = 12.0 + 8.0 * math.sin(2.0 * math.pi * t / 7000.0)
    fast = 4.0 * math.sin(2.0 * math.pi * t / 430.0)
    jitter = 6.0 * (next(rng) - 0.5)
    rate = slow + fast + jitter
    # Occasional ~300 ms deep fades (handover / obstruction).
    if (t // 300) % 23 == 11:
        rate *= 0.15
    return max(rate, 0.0)


def satellite(t):
    """GEO-like capture: ~42 Mbps with periodic rain-fade dips."""
    rate = 42.0 + 2.0 * math.sin(2.0 * math.pi * t / 1900.0)
    phase = t % 4000
    if phase < 250:  # 250 ms fade every 4 s
        rate *= 0.1
    return rate


def main():
    here = os.path.dirname(os.path.abspath(__file__))
    emit(os.path.join(here, "cellular.trace"), 20000, cellular)
    emit(os.path.join(here, "satellite.trace"), 10000, satellite)


if __name__ == "__main__":
    main()
